/**
 * @file
 * cir: a small SSA-style intermediate representation standing in for
 * LLVM IR (paper Section 4.4).
 *
 * Clobber-NVM's compiler contribution is three LLVM passes; the
 * central one identifies clobber writes with alias + dominator
 * analysis and then removes false candidates ("unexposed" and
 * "shadowed", Figures 4 and 5). The algorithms — not LLVM plumbing —
 * are the contribution, so this module reimplements them over a
 * minimal IR with exactly the features the analysis consumes:
 *
 *  - a function is a graph of basic blocks;
 *  - instructions produce SSA values; loads/stores reference pointer
 *    values; pointers arise from arguments, allocas, mallocs, and
 *    field offsets (GEP);
 *  - alias queries between two memory accesses answer no / may /
 *    must, derived from the pointer value chains.
 */
#ifndef CNVM_CIR_IR_H
#define CNVM_CIR_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace cnvm::cir {

using ValueId = int;
constexpr ValueId kNoValue = -1;

/**
 * Declared effect class of a call target. For callees defined in the
 * same module the interprocedural summaries (cir/summaries.h) refine
 * this from the body; for external (unresolved) callees the declared
 * class is all the analysis knows, so it must be conservative.
 */
enum class Effect {
    pure,           ///< no memory effects, deterministic
    readsNVM,       ///< may read NVM through its pointer arguments
    writesNVM,      ///< may read and write NVM through its arguments
    volatileWrite,  ///< writes observable volatile state (globals)
    nondet,         ///< result depends on hidden state (time, rand)
    io,             ///< externally observable side effect (I/O)
};

const char* effectName(Effect e);

enum class Op {
    arg,       ///< function argument (pointer or scalar)
    alloca_,   ///< stack allocation (fresh storage)
    malloc_,   ///< heap allocation (fresh storage)
    gep,       ///< pointer + field offset (operand0 = base pointer)
    load,      ///< read *operand0
    store,     ///< write operand1 to *operand0
    binop,     ///< scalar arithmetic over operands
    call,      ///< call of `callee` with `args`; effects per summary
    br,        ///< unconditional branch (succ0)
    condbr,    ///< conditional branch (succ0 / succ1)
    ret,
    /**
     * @name Persistence intrinsics
     * The instructions the Clobber-NVM compiler *inserts*: clwb of the
     * line holding *operand0, sfence, and the clobber_log callback
     * logging the old value at *operand0. The clobber pass never
     * consumes them; the persistency checker (src/analysis) audits
     * them against the stores.
     */
    /// @{
    flush,       ///< clwb of the line containing *operand0
    fence,       ///< sfence (orders all prior flushes)
    clobberlog,  ///< clobber_log(*operand0) instrumentation call
    /// @}
};

struct Instr {
    Op op = Op::binop;
    ValueId result = kNoValue;   ///< SSA value defined (if any)
    ValueId ptr = kNoValue;      ///< load/store address operand
    ValueId value = kNoValue;    ///< store data / gep base / binop in
    int64_t offset = 0;          ///< gep: field offset; -1 = unknown
    std::string name;            ///< debugging label
    std::string callee;          ///< call: target symbol
    Effect effect = Effect::pure;  ///< call: declared effect class
    std::vector<ValueId> args;   ///< call: actual arguments
};

struct Block {
    std::string label;
    std::vector<Instr> instrs;
    std::vector<int> succs;
};

/** Location of an instruction inside a function. */
struct InstrRef {
    int block = -1;
    int index = -1;

    bool
    operator==(const InstrRef& o) const
    {
        return block == o.block && index == o.index;
    }
};

class Function {
 public:
    explicit Function(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    int
    addBlock(std::string label)
    {
        blocks_.push_back(Block{std::move(label), {}, {}});
        return static_cast<int>(blocks_.size()) - 1;
    }

    void
    addEdge(int from, int to)
    {
        blocks_[from].succs.push_back(to);
    }

    /** Append an instruction; returns its defined value id (if any). */
    ValueId
    append(int block, Instr instr)
    {
        if (instr.op == Op::arg || instr.op == Op::alloca_ ||
            instr.op == Op::malloc_ || instr.op == Op::gep ||
            instr.op == Op::load || instr.op == Op::binop ||
            instr.op == Op::call) {
            instr.result = nextValue_++;
        }
        blocks_[block].instrs.push_back(instr);
        return blocks_[block].instrs.back().result;
    }

    const std::vector<Block>& blocks() const { return blocks_; }
    int numValues() const { return nextValue_; }

    const Instr&
    at(const InstrRef& r) const
    {
        return blocks_[r.block].instrs[r.index];
    }

    /** All instructions matching a predicate, in program order. */
    template <typename Pred>
    std::vector<InstrRef>
    collect(Pred&& pred) const
    {
        std::vector<InstrRef> out;
        for (int b = 0; b < static_cast<int>(blocks_.size()); b++) {
            for (int i = 0;
                 i < static_cast<int>(blocks_[b].instrs.size()); i++) {
                if (pred(blocks_[b].instrs[i]))
                    out.push_back({b, i});
            }
        }
        return out;
    }

 private:
    std::string name_;
    std::vector<Block> blocks_;
    ValueId nextValue_ = 0;
};

/** Convenience builders for the common instruction forms. */
ValueId emitArg(Function& f, int block, const std::string& name);
ValueId emitAlloca(Function& f, int block, const std::string& name);
ValueId emitMalloc(Function& f, int block, const std::string& name);
ValueId emitGep(Function& f, int block, ValueId base, int64_t offset,
                const std::string& name = "");
ValueId emitLoad(Function& f, int block, ValueId ptr,
                 const std::string& name = "");
void emitStore(Function& f, int block, ValueId ptr, ValueId value,
               const std::string& name = "");
ValueId emitBinop(Function& f, int block, ValueId in,
                  const std::string& name = "");
ValueId emitCall(Function& f, int block, const std::string& callee,
                 Effect effect, std::vector<ValueId> args,
                 const std::string& name = "");
void emitFlush(Function& f, int block, ValueId ptr,
               const std::string& name = "");
void emitFence(Function& f, int block, const std::string& name = "");
void emitClobberLog(Function& f, int block, ValueId ptr,
                    const std::string& name = "");

}  // namespace cnvm::cir

#endif  // CNVM_CIR_IR_H
