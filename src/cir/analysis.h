/**
 * @file
 * Analyses backing the clobber-write identification pass: points-to
 * style alias analysis, dominator tree, and reachability — the
 * "classic alias analysis" and dominance reasoning of paper
 * Section 4.4.
 */
#ifndef CNVM_CIR_ANALYSIS_H
#define CNVM_CIR_ANALYSIS_H

#include <vector>

#include "cir/ir.h"

namespace cnvm::cir {

/** Alias-query verdict, as in LLVM's AliasResult. */
enum class Alias { no, may, must };

/**
 * Flow-insensitive pointer descriptors: every pointer value reduces
 * to (base object, offset), where the base is an argument, a fresh
 * allocation, or an unknown (loaded) pointer.
 */
class AliasAnalysis {
 public:
    explicit AliasAnalysis(const Function& f);

    /** Relationship between the targets of two pointer values. */
    Alias alias(ValueId p, ValueId q) const;

    /**
     * True iff the pointer provably targets stack (alloca) storage —
     * volatile memory that needs no flush/fence discipline.
     */
    bool basedOnAlloca(ValueId p) const;

 private:
    enum class BaseKind { arg, fresh, loaded, unknown };

    struct PtrInfo {
        BaseKind kind = BaseKind::unknown;
        ValueId base = kNoValue;
        int64_t offset = 0;
        bool offsetKnown = false;
    };

    std::vector<PtrInfo> info_;
    std::vector<bool> allocaBase_;
};

/** Dominator relation over blocks and instructions. */
class Dominators {
 public:
    explicit Dominators(const Function& f);

    bool blockDominates(int a, int b) const;

    /**
     * True iff every path from b to function end passes through a.
     * Exit blocks are those with no successors; a block whose only
     * successor is itself (terminal spin in the mini-IR encodings)
     * also counts as an exit.
     */
    bool blockPostDominates(int a, int b) const;

    /** True iff instruction a executes on every path before b. */
    bool dominates(const InstrRef& a, const InstrRef& b) const;

    /** True iff b may execute after a on some path. */
    bool mayFollow(const InstrRef& a, const InstrRef& b) const;

    /**
     * True iff once a has executed, b executes before the function
     * ends, on every path (the post-dominance analogue of
     * dominates()). Used by the persistency checker to prove a store
     * is always flushed and a flush is always fenced.
     */
    bool alwaysFollows(const InstrRef& a, const InstrRef& b) const;

 private:
    const Function& f_;
    std::vector<std::vector<bool>> dom_;    ///< dom_[b][a]: a dom b
    std::vector<std::vector<bool>> pdom_;   ///< pdom_[b][a]: a pdom b
    std::vector<std::vector<bool>> reach_;  ///< reach_[a][b]
};

}  // namespace cnvm::cir

#endif  // CNVM_CIR_ANALYSIS_H
