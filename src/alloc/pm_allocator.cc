#include "alloc/pm_allocator.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/rand.h"
#include "stats/counters.h"

namespace cnvm::alloc {

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

}  // namespace

uint64_t
quarantineChecksum(uint32_t count, const QuarantineEntry* entries)
{
    uint64_t sum = fnv1a(&count, sizeof(count));
    sum ^= fnv1a(entries, count * sizeof(QuarantineEntry));
    return sum == 0 ? 1 : sum;
}

AllocHeader
PmAllocator::expectedHeader() const
{
    // The layout is a pure function of the pool geometry — which is
    // what makes the header *healable*: a flipped or poisoned header
    // can be recomputed from scratch (see rebuild()).
    uint64_t heapOff = pool_.heapOff();
    uint64_t heapBytes = pool_.heapSize();
    uint64_t headerEnd = alignUp(heapOff + sizeof(AllocHeader), 64);
    uint64_t quarOff = headerEnd;
    uint64_t bitmapOff = alignUp(quarOff + sizeof(QuarantineTable), 64);
    uint64_t avail = heapBytes - (bitmapOff - heapOff);
    // Each bitmap byte administers 8 granules = 128 data bytes.
    uint64_t bitmapBytes = alignUp(avail / 129 + 1, 64);
    uint64_t dataOff = alignUp(bitmapOff + bitmapBytes, kGranule);
    CNVM_CHECK(dataOff < heapOff + heapBytes,
               "heap too small to format");
    uint64_t dataBytes =
        (heapOff + heapBytes - dataOff) / kGranule * kGranule;
    CNVM_CHECK(dataBytes / kGranule <= bitmapBytes * 8,
               "bitmap sizing bug");
    AllocHeader h{};
    h.magic = kMagic;
    h.bitmapOff = bitmapOff;
    h.bitmapBytes = bitmapBytes;
    h.dataOff = dataOff;
    h.dataBytes = dataBytes;
    h.quarOff = quarOff;
    return h;
}

PmAllocator::PmAllocator(nvm::Pool& pool, bool deferRebuild)
    : pool_(pool)
{
    auto* h = static_cast<AllocHeader*>(pool_.at(pool_.heapOff()));
    if (h->magic != kMagic) {
        // Format a fresh heap region.
        AllocHeader newHdr = expectedHeader();
        // Zero the bitmap and quarantine table first (a re-created
        // pool file is already zero, but a recycled region may not
        // be).
        std::vector<uint8_t> zeros(4096, 0);
        for (uint64_t off = newHdr.bitmapOff;
             off < newHdr.bitmapOff + newHdr.bitmapBytes;
             off += zeros.size()) {
            uint64_t n = std::min<uint64_t>(
                zeros.size(),
                newHdr.bitmapOff + newHdr.bitmapBytes - off);
            pool_.writeAt(off, zeros.data(), n);
        }
        QuarantineTable qt{};
        qt.checksum = quarantineChecksum(0, qt.entries);
        pool_.writeAt(newHdr.quarOff, &qt, sizeof(qt));
        pool_.writeAt(pool_.heapOff(), &newHdr, sizeof(newHdr));
        pool_.flush(pool_.at(newHdr.quarOff), sizeof(qt));
        pool_.flush(pool_.at(newHdr.bitmapOff), newHdr.bitmapBytes);
        pool_.persist(h, sizeof(*h));
    }
    if (deferRebuild)
        beginLazyRebuild();
    else
        rebuild();
}

QuarantineTable*
PmAllocator::quarTable() const
{
    return static_cast<QuarantineTable*>(pool_.at(hdr().quarOff));
}

const AllocHeader&
PmAllocator::hdr() const
{
    return *static_cast<const AllocHeader*>(pool_.at(pool_.heapOff()));
}

uint64_t
PmAllocator::blockGranules(uint64_t payloadOff) const
{
    uint64_t total = sizeof(BlockHeader) + payloadSize(payloadOff);
    return alignUp(total, kGranule) / kGranule;
}

size_t
PmAllocator::payloadSize(uint64_t payloadOff) const
{
    const auto* bh = static_cast<const BlockHeader*>(
        pool_.at(blockOff(payloadOff)));
    pool_.checkRead(bh, sizeof(*bh));
    if ((bh->payloadBytes ^ kBlockMagic) != bh->check) {
        throw CorruptBlockError(
            payloadOff,
            strprintf("corrupt block header at pool offset %llu",
                      static_cast<unsigned long long>(
                          blockOff(payloadOff))));
    }
    return bh->payloadBytes;
}

void
PmAllocator::insertFreeExtentLocked(uint64_t off, uint64_t len)
{
    // Coalesce with the predecessor / successor extents.
    auto next = free_.lower_bound(off);
    if (next != free_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == off) {
            off = prev->first;
            len += prev->second;
            auto range = bySize_.equal_range(prev->second);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == prev->first) {
                    bySize_.erase(it);
                    break;
                }
            }
            free_.erase(prev);
        }
    }
    if (next != free_.end() && off + len == next->first) {
        len += next->second;
        auto range = bySize_.equal_range(next->second);
        for (auto it = range.first; it != range.second; ++it) {
            if (it->second == next->first) {
                bySize_.erase(it);
                break;
            }
        }
        free_.erase(next);
    }
    free_[off] = len;
    bySize_.emplace(len, off);
}

void
PmAllocator::insertFreeRunMaskedLocked(uint64_t off, uint64_t len)
{
    if (holds_.empty() && reserved_.empty()) {
        insertFreeExtentLocked(off, len);
        return;
    }
    // Collect every hold / live-reservation range overlapping the run,
    // then insert only the gaps between them.
    std::vector<std::pair<uint64_t, uint64_t>> masks;
    for (const Hold& hd : holds_) {
        if (hd.off < off + len && off < hd.off + hd.bytes)
            masks.emplace_back(hd.off, hd.off + hd.bytes);
    }
    auto it = reserved_.lower_bound(off);
    if (it != reserved_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second > off)
            masks.emplace_back(prev->first,
                               prev->first + prev->second);
    }
    for (; it != reserved_.end() && it->first < off + len; ++it)
        masks.emplace_back(it->first, it->first + it->second);
    if (masks.empty()) {
        insertFreeExtentLocked(off, len);
        return;
    }
    std::sort(masks.begin(), masks.end());
    uint64_t cur = off;
    for (auto [lo, hi] : masks) {
        lo = std::max(lo, off);
        hi = std::min(hi, off + len);
        if (lo > cur)
            insertFreeExtentLocked(cur, lo - cur);
        cur = std::max(cur, hi);
    }
    if (cur < off + len)
        insertFreeExtentLocked(cur, off + len - cur);
}

uint64_t
PmAllocator::reserveLocked(uint64_t need)
{
    auto it = bySize_.lower_bound(need);
    if (it == bySize_.end())
        return 0;
    uint64_t off = it->second;
    uint64_t len = it->first;
    bySize_.erase(it);
    free_.erase(off);
    if (len > need)
        insertFreeExtentLocked(off + need, len - need);
    return off;
}

uint64_t
PmAllocator::reserve(size_t payload)
{
    uint64_t need =
        alignUp(sizeof(BlockHeader) + payload, kGranule);
    uint64_t off;
    {
        std::lock_guard<std::mutex> g(mu_);
        off = reserveLocked(need);
        // During a lazy rebuild the free map only covers the scanned
        // prefix of the bitmap: pull more of the scan before declaring
        // the heap exhausted. 64 chunks = 4 KiB of bitmap = 512 KiB of
        // data per pull keeps the stall bounded.
        while (off == 0 && lazyActive_ && !lazyScanDone_) {
            lazyStepLocked(64);
            off = reserveLocked(need);
        }
        if (off != 0)
            reserved_[off] = need;
    }
    if (off == 0)
        fatal("persistent heap exhausted");
    BlockHeader bh{payload, payload ^ kBlockMagic};
    pool_.writeAt(off, &bh, sizeof(bh));
    stats::bump(stats::Counter::allocs);
    return off + sizeof(BlockHeader);
}

void
PmAllocator::releaseReservation(uint64_t payloadOff)
{
    uint64_t off = blockOff(payloadOff);
    uint64_t len = blockGranules(payloadOff) * kGranule;
    std::lock_guard<std::mutex> g(mu_);
    reserved_.erase(off);
    insertFreeExtentLocked(off, len);
}

void
PmAllocator::setBits(uint64_t bOff, uint64_t granules, bool value,
                     bool flushBits)
{
    const AllocHeader& h = hdr();
    uint64_t firstGranule = (bOff - h.dataOff) / kGranule;
    uint64_t firstByte = h.bitmapOff + firstGranule / 8;
    uint64_t lastByte = h.bitmapOff + (firstGranule + granules - 1) / 8;
    // Read-modify-write whole bytes under the allocator lock.
    std::vector<uint8_t> buf(lastByte - firstByte + 1);
    std::memcpy(buf.data(), pool_.at(firstByte), buf.size());
    for (uint64_t g = 0; g < granules; g++) {
        uint64_t bit = firstGranule + g;
        uint64_t byte = (h.bitmapOff + bit / 8) - firstByte;
        if (value)
            buf[byte] |= static_cast<uint8_t>(1u << (bit % 8));
        else
            buf[byte] &= static_cast<uint8_t>(~(1u << (bit % 8)));
    }
    pool_.writeAt(firstByte, buf.data(), buf.size());
    if (flushBits)
        pool_.flush(pool_.at(firstByte), buf.size());
}

void
PmAllocator::persistAllocate(uint64_t payloadOff)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules = blockGranules(payloadOff);
    std::lock_guard<std::mutex> g(mu_);
    setBits(bOff, granules, true, true);
    pool_.flush(pool_.at(bOff), sizeof(BlockHeader));
    reserved_.erase(bOff);  // the bitmap speaks for the block now
}

void
PmAllocator::persistFree(uint64_t payloadOff)
{
    persistFree(payloadOff, payloadSize(payloadOff));
}

void
PmAllocator::persistFree(uint64_t payloadOff, size_t payloadBytes)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules =
        alignUp(sizeof(BlockHeader) + payloadBytes, kGranule) / kGranule;
    std::lock_guard<std::mutex> g(mu_);
    setBits(bOff, granules, false, true);
    // Mid-lazy-rebuild, a range the scan has not reached yet must not
    // enter the free map twice: the cleared bits make the ongoing scan
    // (or the final reconcile) insert it exactly once.
    if (scannedLocked(bOff, granules))
        insertFreeExtentLocked(bOff, granules * kGranule);
    stats::bump(stats::Counter::frees);
}

void
PmAllocator::revertBits(uint64_t payloadOff, size_t payloadBytes,
                        bool allocated)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules =
        alignUp(sizeof(BlockHeader) + payloadBytes, kGranule) / kGranule;
    std::lock_guard<std::mutex> g(mu_);
    if (allocated && lazyActive_) {
        // Lazy recovery heals concurrently with foreground traffic: a
        // block the crashed transaction allocated (and committed) may
        // since have been freed again by a committed foreground
        // transaction. Its free-map extent is the evidence — don't
        // re-force such a block allocated, or the free would leak.
        auto it = free_.upper_bound(bOff);
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first <= bOff &&
                bOff + granules * kGranule <=
                    prev->first + prev->second)
                return;
        }
    }
    if (allocated) {
        // Restoring an allocated block whose header may have been
        // torn: rewrite the header from the intent table so later
        // frees can trust it.
        BlockHeader bh{payloadBytes, payloadBytes ^ kBlockMagic};
        pool_.writeAt(bOff, &bh, sizeof(bh));
        pool_.flush(pool_.at(bOff), sizeof(bh));
    }
    setBits(bOff, granules, allocated, true);
}

void
PmAllocator::quarantineLocked(uint64_t off, uint64_t bytes,
                              QuarantineReason reason)
{
    QuarantineTable* qt = quarTable();
    // Idempotent: an already-covered range gets no second entry (the
    // bits below are re-forced anyway).
    bool covered = false;
    for (uint32_t i = 0; i < qt->count; i++) {
        const QuarantineEntry& e = qt->entries[i];
        if (e.off <= off && off + bytes <= e.off + e.bytes) {
            covered = true;
            break;
        }
    }
    if (!covered && qt->count < QuarantineTable::kCapacity) {
        QuarantineEntry e{};
        e.off = off;
        e.bytes = bytes;
        e.reason = reason;
        uint32_t count = qt->count + 1;
        pool_.write(&qt->entries[qt->count], &e, sizeof(e));
        pool_.write(&qt->count, &count, sizeof(count));
        uint64_t sum = quarantineChecksum(count, qt->entries);
        pool_.write(&qt->checksum, &sum, sizeof(sum));
        pool_.flush(qt, sizeof(QuarantineTable));
        pool_.fence();
        stats::bump(stats::Counter::quarantinedBlocks);
        stats::bump(stats::Counter::quarantinedBytes, bytes);
    }
    // Force the covered granules allocated so no future rebuild can
    // hand them out. The range is clipped to the data area (a bitmap
    // chunk's tail can administer granules past dataBytes).
    uint64_t lo = std::max(off, hdr().dataOff);
    uint64_t hi = std::min(off + bytes, hdr().dataOff + hdr().dataBytes);
    if (lo < hi) {
        uint64_t granules = (hi - lo + kGranule - 1) / kGranule;
        setBits(lo, granules, true, true);
    }
}

void
PmAllocator::quarantine(uint64_t blockOff, uint64_t bytes,
                        QuarantineReason reason)
{
    std::lock_guard<std::mutex> g(mu_);
    quarantineLocked(blockOff, bytes, reason);
    pool_.fence();
}

bool
PmAllocator::isQuarantinedLocked(uint64_t off, uint64_t n) const
{
    const QuarantineTable* qt = quarTable();
    for (uint32_t i = 0; i < qt->count; i++) {
        const QuarantineEntry& e = qt->entries[i];
        if (off < e.off + e.bytes && e.off < off + n)
            return true;
    }
    return false;
}

bool
PmAllocator::isQuarantined(uint64_t off, uint64_t n) const
{
    std::lock_guard<std::mutex> g(mu_);
    return isQuarantinedLocked(off, n);
}

uint32_t
PmAllocator::quarantineCount() const
{
    std::lock_guard<std::mutex> g(mu_);
    return quarTable()->count;
}

uint64_t
PmAllocator::quarantinedBytes() const
{
    std::lock_guard<std::mutex> g(mu_);
    const QuarantineTable* qt = quarTable();
    uint64_t sum = 0;
    for (uint32_t i = 0; i < qt->count; i++)
        sum += qt->entries[i].bytes;
    return sum;
}

bool
PmAllocator::quarantineViolation() const
{
    std::lock_guard<std::mutex> g(mu_);
    const QuarantineTable* qt = quarTable();
    for (uint32_t i = 0; i < qt->count; i++) {
        const QuarantineEntry& e = qt->entries[i];
        for (const auto& [off, len] : free_) {
            if (off < e.off + e.bytes && e.off < off + len)
                return true;
        }
    }
    return false;
}

void
PmAllocator::healMetaLocked(RebuildStats* st)
{
    // Heal the header before trusting a single offset below: its
    // layout fields are recomputable, so a flipped, poisoned or
    // simply wrong header is rewritten in place (the rewrite also
    // clears the line's poison/taint).
    {
        AllocHeader want = expectedHeader();
        auto* cur =
            static_cast<AllocHeader*>(pool_.at(pool_.heapOff()));
        bool bad = pool_.isTainted(cur, sizeof(*cur));
        if (!bad) {
            try {
                pool_.checkRead(cur, sizeof(*cur));
            } catch (const nvm::MediaFaultError&) {
                bad = true;
            }
        }
        if (!bad && std::memcmp(cur, &want, sizeof(want)) != 0)
            bad = true;
        if (bad) {
            pool_.writeAt(pool_.heapOff(), &want, sizeof(want));
            pool_.persist(pool_.at(pool_.heapOff()), sizeof(want));
            st->headerHealed = true;
        }
    }
    const AllocHeader& h = hdr();

    // Validate the quarantine table before trusting it. An unreadable
    // or checksum-failing table is reset: the ranges it described
    // still have their bitmap bits forced allocated (quarantine does
    // both), so nothing resurfaces — only the diagnostic record is
    // lost.
    QuarantineTable* qt = quarTable();
    bool tableOk = true;
    try {
        pool_.checkRead(qt, sizeof(QuarantineTable));
    } catch (const nvm::MediaFaultError&) {
        tableOk = false;
    }
    if (tableOk && (qt->count > QuarantineTable::kCapacity ||
                    quarantineChecksum(qt->count, qt->entries) !=
                        qt->checksum)) {
        tableOk = false;
    }
    if (!tableOk) {
        QuarantineTable fresh{};
        fresh.checksum = quarantineChecksum(0, fresh.entries);
        pool_.writeAt(h.quarOff, &fresh, sizeof(fresh));
        pool_.persist(pool_.at(h.quarOff), sizeof(fresh));
        st->quarantineTableReset = true;
    }
}

RebuildStats
PmAllocator::rebuild(bool keepSession)
{
    RebuildStats st{};
    std::lock_guard<std::mutex> g(mu_);
    free_.clear();
    bySize_.clear();
    if (!keepSession) {
        // Fresh-process recovery: pre-crash reservations and holds are
        // dead volatile state of the previous execution.
        reserved_.clear();
        holds_.clear();
    }

    healMetaLocked(&st);
    const AllocHeader& h = hdr();
    QuarantineTable* qt = quarTable();

    // Guarded bitmap scan into a trusted local copy. A 64-byte chunk
    // that cannot be read (poison) or was bit-flipped (taint) cannot
    // distinguish its allocated granules from its free ones: the
    // whole 8 KiB it administers is quarantined, the chunk rewritten
    // as all-ones (which also heals the line — fresh stores make the
    // cell trustworthy again), and none of it enters the free map.
    uint64_t nGranules = h.dataBytes / kGranule;
    uint64_t usedBitmapBytes = (nGranules + 7) / 8;
    std::vector<uint8_t> bits(usedBitmapBytes, 0xff);
    bool wroteBits = false;
    for (uint64_t c = 0; c < usedBitmapBytes; c += 64) {
        auto n = std::min<uint64_t>(64, usedBitmapBytes - c);
        const void* src = pool_.at(h.bitmapOff + c);
        bool bad = pool_.isTainted(src, n);
        if (!bad) {
            try {
                pool_.checkRead(src, n);
            } catch (const nvm::MediaFaultError&) {
                bad = true;
            }
        }
        if (!bad) {
            std::memcpy(bits.data() + c, src, n);
            continue;
        }
        st.poisonedChunks++;
        uint64_t firstG = c * 8;
        uint64_t lastG = std::min(firstG + n * 8, nGranules);
        uint64_t off = h.dataOff + firstG * kGranule;
        uint64_t bytes = (lastG - firstG) * kGranule;
        std::vector<uint8_t> ones(n, 0xff);
        pool_.writeAt(h.bitmapOff + c, ones.data(), n);
        pool_.flush(src, n);
        wroteBits = true;
        quarantineLocked(off, bytes, kQuarPoisonedBitmap);
        st.quarantinedBlocks++;
        st.quarantinedBytes += bytes;
    }
    if (wroteBits)
        pool_.fence();

    // Quarantined ranges never re-enter the free map, even if their
    // persistent bits were somehow cleared since (belt and braces:
    // force them in the local copy too).
    if (qt->count <= QuarantineTable::kCapacity) {
        for (uint32_t i = 0; i < qt->count; i++) {
            const QuarantineEntry& e = qt->entries[i];
            uint64_t lo = std::max(e.off, h.dataOff);
            uint64_t hi =
                std::min(e.off + e.bytes, h.dataOff + h.dataBytes);
            for (uint64_t b = lo; b < hi; b += kGranule) {
                uint64_t gi = (b - h.dataOff) / kGranule;
                bits[gi / 8] |= static_cast<uint8_t>(1u << (gi % 8));
            }
        }
    }

    uint64_t runStart = 0;
    bool inRun = false;
    for (uint64_t i = 0; i <= nGranules; i++) {
        bool allocated =
            i < nGranules &&
            (bits[i / 8] & (1u << (i % 8))) != 0;
        bool isFree = i < nGranules && !allocated;
        if (isFree && !inRun) {
            runStart = i;
            inRun = true;
        } else if (!isFree && inRun) {
            insertFreeRunMaskedLocked(h.dataOff + runStart * kGranule,
                                      (i - runStart) * kGranule);
            inRun = false;
        }
    }

    // A full rebuild supersedes any lazy session: fold its salvage
    // into this pass's stats and close it.
    if (lazyActive_) {
        st.quarantinedBlocks += lazyStats_.quarantinedBlocks;
        st.quarantinedBytes += lazyStats_.quarantinedBytes;
        st.poisonedChunks += lazyStats_.poisonedChunks;
        st.quarantineTableReset =
            st.quarantineTableReset || lazyStats_.quarantineTableReset;
        st.headerHealed = st.headerHealed || lazyStats_.headerHealed;
        lazyStats_ = RebuildStats{};
        lazyActive_ = false;
        lazyScanDone_ = true;
        lazyInRun_ = false;
    }
    return st;
}

void
PmAllocator::beginLazyRebuild()
{
    std::lock_guard<std::mutex> g(mu_);
    free_.clear();
    bySize_.clear();
    reserved_.clear();
    holds_.clear();
    lazyStats_ = RebuildStats{};
    healMetaLocked(&lazyStats_);
    lazyActive_ = true;
    lazyScanDone_ = false;
    lazyCursor_ = 0;
    lazyInRun_ = false;
}

bool
PmAllocator::lazyRebuildActive() const
{
    std::lock_guard<std::mutex> g(mu_);
    return lazyActive_;
}

bool
PmAllocator::scannedLocked(uint64_t bOff, uint64_t granules) const
{
    if (!lazyActive_ || lazyScanDone_)
        return true;
    const AllocHeader& h = hdr();
    uint64_t lastG = (bOff - h.dataOff) / kGranule + granules - 1;
    return lastG / 8 < lazyCursor_;
}

bool
PmAllocator::lazyStepLocked(uint64_t chunks)
{
    const AllocHeader& h = hdr();
    uint64_t nGranules = h.dataBytes / kGranule;
    uint64_t usedBitmapBytes = (nGranules + 7) / 8;
    QuarantineTable* qt = quarTable();
    bool wroteBits = false;

    for (uint64_t step = 0;
         step < chunks && lazyCursor_ < usedBitmapBytes; step++) {
        uint64_t c = lazyCursor_;
        uint64_t n = std::min<uint64_t>(64, usedBitmapBytes - c);
        uint8_t local[64];
        const void* src = pool_.at(h.bitmapOff + c);
        bool bad = pool_.isTainted(src, n);
        if (!bad) {
            try {
                pool_.checkRead(src, n);
            } catch (const nvm::MediaFaultError&) {
                bad = true;
            }
        }
        uint64_t firstG = c * 8;
        uint64_t lastG = std::min(firstG + n * 8, nGranules);
        if (bad) {
            // Same salvage as rebuild(): the whole chunk's granules
            // are quarantined and the chunk rewritten all-ones.
            lazyStats_.poisonedChunks++;
            std::memset(local, 0xff, n);
            pool_.writeAt(h.bitmapOff + c, local, n);
            pool_.flush(src, n);
            wroteBits = true;
            quarantineLocked(h.dataOff + firstG * kGranule,
                             (lastG - firstG) * kGranule,
                             kQuarPoisonedBitmap);
            lazyStats_.quarantinedBlocks++;
            lazyStats_.quarantinedBytes += (lastG - firstG) * kGranule;
        } else {
            std::memcpy(local, src, n);
        }
        // Force quarantined granules allocated in the local copy.
        if (qt->count <= QuarantineTable::kCapacity) {
            for (uint32_t i = 0; i < qt->count; i++) {
                const QuarantineEntry& e = qt->entries[i];
                uint64_t lo = std::max(e.off, h.dataOff +
                                                  firstG * kGranule);
                uint64_t hi = std::min(e.off + e.bytes,
                                       h.dataOff + lastG * kGranule);
                for (uint64_t b = lo; b < hi; b += kGranule) {
                    uint64_t gi = (b - h.dataOff) / kGranule;
                    local[gi / 8 - c] |=
                        static_cast<uint8_t>(1u << (gi % 8));
                }
            }
        }
        for (uint64_t gi = firstG; gi < lastG; gi++) {
            bool allocated =
                (local[gi / 8 - c] & (1u << (gi % 8))) != 0;
            if (!allocated) {
                if (!lazyInRun_) {
                    lazyRunStartG_ = gi;
                    lazyInRun_ = true;
                }
            } else if (lazyInRun_) {
                insertFreeRunMaskedLocked(
                    h.dataOff + lazyRunStartG_ * kGranule,
                    (gi - lazyRunStartG_) * kGranule);
                lazyInRun_ = false;
            }
        }
        lazyCursor_ += n;
    }
    // Flush the still-open free run up to the cursor: on a mostly
    // empty pool the tail is one huge run that would otherwise only
    // become allocatable once the scan reaches the very end — turning
    // the first post-crash reserve() into a full-bitmap scan. The
    // continuation run opened by the next pull coalesces with this
    // extent in insertFreeExtentLocked, so no fragmentation survives.
    if (lazyInRun_ && lazyCursor_ < usedBitmapBytes) {
        uint64_t curG = std::min(lazyCursor_ * 8, nGranules);
        if (curG > lazyRunStartG_) {
            insertFreeRunMaskedLocked(
                h.dataOff + lazyRunStartG_ * kGranule,
                (curG - lazyRunStartG_) * kGranule);
            lazyInRun_ = false;
        }
    }
    if (wroteBits)
        pool_.fence();
    if (lazyCursor_ >= usedBitmapBytes) {
        if (lazyInRun_) {
            insertFreeRunMaskedLocked(
                h.dataOff + lazyRunStartG_ * kGranule,
                (nGranules - lazyRunStartG_) * kGranule);
            lazyInRun_ = false;
        }
        lazyScanDone_ = true;
    }
    return lazyScanDone_;
}

void
PmAllocator::addHold(unsigned tid, uint64_t off, uint64_t bytes)
{
    std::lock_guard<std::mutex> g(mu_);
    holds_.push_back({tid, off, bytes});
}

void
PmAllocator::releaseHolds(unsigned tid)
{
    std::lock_guard<std::mutex> g(mu_);
    holds_.erase(std::remove_if(holds_.begin(), holds_.end(),
                                [&](const Hold& hd) {
                                    return hd.tid == tid;
                                }),
                 holds_.end());
}

size_t
PmAllocator::holdCount() const
{
    std::lock_guard<std::mutex> g(mu_);
    return holds_.size();
}

size_t
PmAllocator::freeBytes() const
{
    std::lock_guard<std::mutex> g(mu_);
    size_t sum = 0;
    for (const auto& [off, len] : free_)
        sum += len;
    return sum;
}

size_t
PmAllocator::freeExtents() const
{
    std::lock_guard<std::mutex> g(mu_);
    return free_.size();
}

}  // namespace cnvm::alloc
