#include "alloc/pm_allocator.h"

#include <cstring>
#include <vector>

#include "common/error.h"
#include "stats/counters.h"

namespace cnvm::alloc {

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

}  // namespace

PmAllocator::PmAllocator(nvm::Pool& pool) : pool_(pool)
{
    auto* h = static_cast<AllocHeader*>(pool_.at(pool_.heapOff()));
    if (h->magic != kMagic) {
        // Format a fresh heap region. Bitmap sized so that
        // bitmapBytes * 8 granules cover the remaining data area.
        uint64_t heapOff = pool_.heapOff();
        uint64_t heapBytes = pool_.heapSize();
        uint64_t headerEnd = alignUp(heapOff + sizeof(AllocHeader), 64);
        uint64_t avail = heapBytes - (headerEnd - heapOff);
        // Each bitmap byte administers 8 granules = 128 data bytes.
        uint64_t bitmapBytes = alignUp(avail / 129 + 1, 64);
        uint64_t dataOff = alignUp(headerEnd + bitmapBytes, kGranule);
        CNVM_CHECK(dataOff < heapOff + heapBytes,
                   "heap too small to format");
        uint64_t dataBytes =
            (heapOff + heapBytes - dataOff) / kGranule * kGranule;
        CNVM_CHECK(dataBytes / kGranule <= bitmapBytes * 8,
                   "bitmap sizing bug");

        AllocHeader newHdr{};
        newHdr.magic = kMagic;
        newHdr.bitmapOff = headerEnd;
        newHdr.bitmapBytes = bitmapBytes;
        newHdr.dataOff = dataOff;
        newHdr.dataBytes = dataBytes;
        // Zero the bitmap first (a re-created pool file is already
        // zero, but a recycled region may not be).
        std::vector<uint8_t> zeros(4096, 0);
        for (uint64_t off = headerEnd; off < headerEnd + bitmapBytes;
             off += zeros.size()) {
            uint64_t n = std::min<uint64_t>(zeros.size(),
                                            headerEnd + bitmapBytes - off);
            pool_.writeAt(off, zeros.data(), n);
        }
        pool_.writeAt(heapOff, &newHdr, sizeof(newHdr));
        pool_.flush(pool_.at(headerEnd), bitmapBytes);
        pool_.persist(h, sizeof(*h));
    }
    rebuild();
}

const AllocHeader&
PmAllocator::hdr() const
{
    return *static_cast<const AllocHeader*>(pool_.at(pool_.heapOff()));
}

uint64_t
PmAllocator::blockGranules(uint64_t payloadOff) const
{
    uint64_t total = sizeof(BlockHeader) + payloadSize(payloadOff);
    return alignUp(total, kGranule) / kGranule;
}

size_t
PmAllocator::payloadSize(uint64_t payloadOff) const
{
    const auto* bh = static_cast<const BlockHeader*>(
        pool_.at(blockOff(payloadOff)));
    CNVM_CHECK((bh->payloadBytes ^ kBlockMagic) == bh->check,
               "corrupt block header");
    return bh->payloadBytes;
}

void
PmAllocator::insertFreeExtentLocked(uint64_t off, uint64_t len)
{
    // Coalesce with the predecessor / successor extents.
    auto next = free_.lower_bound(off);
    if (next != free_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == off) {
            off = prev->first;
            len += prev->second;
            auto range = bySize_.equal_range(prev->second);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == prev->first) {
                    bySize_.erase(it);
                    break;
                }
            }
            free_.erase(prev);
        }
    }
    if (next != free_.end() && off + len == next->first) {
        len += next->second;
        auto range = bySize_.equal_range(next->second);
        for (auto it = range.first; it != range.second; ++it) {
            if (it->second == next->first) {
                bySize_.erase(it);
                break;
            }
        }
        free_.erase(next);
    }
    free_[off] = len;
    bySize_.emplace(len, off);
}

uint64_t
PmAllocator::reserveLocked(uint64_t need)
{
    auto it = bySize_.lower_bound(need);
    if (it == bySize_.end())
        return 0;
    uint64_t off = it->second;
    uint64_t len = it->first;
    bySize_.erase(it);
    free_.erase(off);
    if (len > need)
        insertFreeExtentLocked(off + need, len - need);
    return off;
}

uint64_t
PmAllocator::reserve(size_t payload)
{
    uint64_t need =
        alignUp(sizeof(BlockHeader) + payload, kGranule);
    uint64_t off;
    {
        std::lock_guard<std::mutex> g(mu_);
        off = reserveLocked(need);
    }
    if (off == 0)
        fatal("persistent heap exhausted");
    BlockHeader bh{payload, payload ^ kBlockMagic};
    pool_.writeAt(off, &bh, sizeof(bh));
    stats::bump(stats::Counter::allocs);
    return off + sizeof(BlockHeader);
}

void
PmAllocator::releaseReservation(uint64_t payloadOff)
{
    uint64_t off = blockOff(payloadOff);
    uint64_t len = blockGranules(payloadOff) * kGranule;
    std::lock_guard<std::mutex> g(mu_);
    insertFreeExtentLocked(off, len);
}

void
PmAllocator::setBits(uint64_t bOff, uint64_t granules, bool value,
                     bool flushBits)
{
    const AllocHeader& h = hdr();
    uint64_t firstGranule = (bOff - h.dataOff) / kGranule;
    uint64_t firstByte = h.bitmapOff + firstGranule / 8;
    uint64_t lastByte = h.bitmapOff + (firstGranule + granules - 1) / 8;
    // Read-modify-write whole bytes under the allocator lock.
    std::vector<uint8_t> buf(lastByte - firstByte + 1);
    std::memcpy(buf.data(), pool_.at(firstByte), buf.size());
    for (uint64_t g = 0; g < granules; g++) {
        uint64_t bit = firstGranule + g;
        uint64_t byte = (h.bitmapOff + bit / 8) - firstByte;
        if (value)
            buf[byte] |= static_cast<uint8_t>(1u << (bit % 8));
        else
            buf[byte] &= static_cast<uint8_t>(~(1u << (bit % 8)));
    }
    pool_.writeAt(firstByte, buf.data(), buf.size());
    if (flushBits)
        pool_.flush(pool_.at(firstByte), buf.size());
}

void
PmAllocator::persistAllocate(uint64_t payloadOff)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules = blockGranules(payloadOff);
    std::lock_guard<std::mutex> g(mu_);
    setBits(bOff, granules, true, true);
    pool_.flush(pool_.at(bOff), sizeof(BlockHeader));
}

void
PmAllocator::persistFree(uint64_t payloadOff)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules = blockGranules(payloadOff);
    std::lock_guard<std::mutex> g(mu_);
    setBits(bOff, granules, false, true);
    insertFreeExtentLocked(bOff, granules * kGranule);
    stats::bump(stats::Counter::frees);
}

void
PmAllocator::revertBits(uint64_t payloadOff, size_t payloadBytes,
                        bool allocated)
{
    uint64_t bOff = blockOff(payloadOff);
    uint64_t granules =
        alignUp(sizeof(BlockHeader) + payloadBytes, kGranule) / kGranule;
    std::lock_guard<std::mutex> g(mu_);
    if (allocated) {
        // Restoring an allocated block whose header may have been
        // torn: rewrite the header from the intent table so later
        // frees can trust it.
        BlockHeader bh{payloadBytes, payloadBytes ^ kBlockMagic};
        pool_.writeAt(bOff, &bh, sizeof(bh));
        pool_.flush(pool_.at(bOff), sizeof(bh));
    }
    setBits(bOff, granules, allocated, true);
}

void
PmAllocator::rebuild()
{
    const AllocHeader& h = hdr();
    std::lock_guard<std::mutex> g(mu_);
    free_.clear();
    bySize_.clear();
    const auto* bitmap =
        static_cast<const uint8_t*>(pool_.at(h.bitmapOff));
    uint64_t nGranules = h.dataBytes / kGranule;
    uint64_t runStart = 0;
    bool inRun = false;
    for (uint64_t i = 0; i <= nGranules; i++) {
        bool allocated =
            i < nGranules &&
            (bitmap[i / 8] & (1u << (i % 8))) != 0;
        bool isFree = i < nGranules && !allocated;
        if (isFree && !inRun) {
            runStart = i;
            inRun = true;
        } else if (!isFree && inRun) {
            insertFreeExtentLocked(h.dataOff + runStart * kGranule,
                                   (i - runStart) * kGranule);
            inRun = false;
        }
    }
}

size_t
PmAllocator::freeBytes() const
{
    std::lock_guard<std::mutex> g(mu_);
    size_t sum = 0;
    for (const auto& [off, len] : free_)
        sum += len;
    return sum;
}

size_t
PmAllocator::freeExtents() const
{
    std::lock_guard<std::mutex> g(mu_);
    return free_.size();
}

}  // namespace cnvm::alloc
