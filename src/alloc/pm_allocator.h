/**
 * @file
 * Failure-atomic persistent heap allocator (the pmalloc substrate).
 *
 * Mirrors the structure of PMDK's allocator, which Clobber-NVM builds
 * on: allocations are *reserved* volatilely during a transaction and only
 * become persistent at commit, driven by the owning runtime's intent log
 * (redo). Frees are deferred to commit. Consequences:
 *
 *  - a crash mid-transaction leaks nothing: unreserved state is exactly
 *    what the persistent bitmap describes;
 *  - a crash mid-commit is repaired from the runtime's persistent intent
 *    log by idempotent bit writes (revertBits);
 *  - Clobber-NVM's re-execution path simply re-reserves — the volatile
 *    free map is rebuilt from the (unchanged) bitmap first, so recovery
 *    is deterministic.
 *
 * Persistent layout inside the pool's heap region (pool version 2):
 *
 *   [ AllocHeader | quarantine table | bitmap (1 bit / 16-byte
 *     granule) | data ]
 *
 * Every block is preceded by a 16-byte header recording its payload
 * size (needed by free and by bit reverts).
 *
 * The quarantine table (PR 5) records heap ranges whose media went
 * bad — a poisoned bitmap chunk, a block header that fails its
 * checksum during salvage. Quarantined ranges have their bitmap bits
 * forced allocated and the persistent table keeps rebuild() from ever
 * returning them to the free map, so a bad cell can never be handed
 * out again.
 */
#ifndef CNVM_ALLOC_PM_ALLOCATOR_H
#define CNVM_ALLOC_PM_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/error.h"
#include "nvm/pool.h"

namespace cnvm::alloc {

constexpr uint64_t kGranule = 16;

/** Persistent header at the start of the heap region. */
struct AllocHeader {
    uint64_t magic;
    uint64_t bitmapOff;    ///< pool offset of the bitmap
    uint64_t bitmapBytes;
    uint64_t dataOff;      ///< pool offset of the first granule
    uint64_t dataBytes;
    uint64_t quarOff;      ///< pool offset of the quarantine table
};

/** Per-block persistent header (16 bytes, precedes the payload). */
struct BlockHeader {
    uint64_t payloadBytes;
    uint64_t check;        ///< payloadBytes ^ kBlockMagic
};

/** Why a heap range was quarantined. */
enum QuarantineReason : uint32_t {
    kQuarPoisonedBitmap = 1,  ///< its bitmap chunk is unreadable
    kQuarCorruptHeader = 2,   ///< block header failed its checksum
    kQuarPoisonedData = 3,    ///< data lines raised media faults
};

/** One quarantined heap range (absolute pool offsets). */
struct QuarantineEntry {
    uint64_t off;
    uint64_t bytes;
    uint32_t reason;       ///< QuarantineReason
    uint32_t pad;
};

/** Persistent, self-validating quarantine table. */
struct QuarantineTable {
    static constexpr uint32_t kCapacity = 64;
    uint32_t count;
    uint32_t pad;
    uint64_t checksum;     ///< quarantineChecksum(count, entries)
    QuarantineEntry entries[kCapacity];
};

/** fnv1a over the live prefix of the table (0 maps to 1). */
uint64_t quarantineChecksum(uint32_t count,
                            const QuarantineEntry* entries);

/**
 * A block header failed its checksum (thrown by payloadSize instead of
 * aborting the process: recovery quarantines the block and goes on).
 */
class CorruptBlockError : public FatalError {
 public:
    CorruptBlockError(uint64_t payloadOff, const std::string& what)
        : FatalError(what), payloadOff_(payloadOff) {}

    uint64_t payloadOff() const { return payloadOff_; }

 private:
    uint64_t payloadOff_;
};

/** What one rebuild() pass salvaged. */
struct RebuildStats {
    uint64_t quarantinedBlocks = 0;   ///< newly quarantined ranges
    uint64_t quarantinedBytes = 0;
    uint64_t poisonedChunks = 0;      ///< unreadable bitmap chunks
    bool quarantineTableReset = false;///< table itself was corrupt
    bool headerHealed = false;        ///< AllocHeader recomputed
};

class PmAllocator {
 public:
    static constexpr uint64_t kMagic = 0xA110CA7EDB17ull;
    static constexpr uint64_t kBlockMagic = 0xB10CB10CB10CB10Cull;

    /**
     * Attach to (formatting if necessary) the pool's heap region.
     * With `deferRebuild` the constructor skips the full bitmap scan
     * and arms the incremental lazy rebuild instead (instant restart:
     * the caller is expected to run beginLazyRebuild-style recovery
     * through the engine; reserve() pulls scan work on demand).
     */
    explicit PmAllocator(nvm::Pool& pool, bool deferRebuild = false);

    PmAllocator(const PmAllocator&) = delete;
    PmAllocator& operator=(const PmAllocator&) = delete;

    /**
     * Volatile-reserve a block with `payload` usable bytes.
     * @return pool offset of the payload (16-byte aligned).
     */
    uint64_t reserve(size_t payload);

    /** Roll back a reservation that never committed. */
    void releaseReservation(uint64_t payloadOff);

    /**
     * Payload size recorded in the block header.
     * @throws CorruptBlockError if the header fails its checksum;
     *         nvm::MediaFaultError if its line is poisoned.
     */
    size_t payloadSize(uint64_t payloadOff) const;

    /**
     * Commit a reservation: set its bitmap bits and flush them (plus
     * the block header). The caller issues the ordering fence.
     */
    void persistAllocate(uint64_t payloadOff);

    /**
     * Commit a deferred free: clear bitmap bits, flush, and return the
     * space to the volatile free map. Caller issues the fence.
     */
    void persistFree(uint64_t payloadOff);

    /**
     * persistFree with the payload size supplied by the caller's
     * intent table — trusts nothing on the media, so a block whose
     * header line went bad can still be freed at commit.
     */
    void persistFree(uint64_t payloadOff, size_t payloadBytes);

    /**
     * Recovery: force the bitmap bits of a block to `allocated`.
     * Idempotent; used when replaying/reverting intent logs. The size
     * comes from the caller's intent table — the block header itself
     * may have been torn by the crash.
     */
    void revertBits(uint64_t payloadOff, size_t payloadBytes,
                    bool allocated);

    /**
     * Rebuild the volatile free map from the persistent bitmap.
     * Bitmap chunks that are poisoned or tainted are quarantined (the
     * granules they administer are forced allocated, persistently)
     * rather than trusted; already-quarantined ranges never re-enter
     * the free map. @return what this pass salvaged.
     *
     * `keepSession` distinguishes the two callers: false (default) is
     * fresh-process recovery — stale volatile reservations and holds
     * are discarded before the scan; true is the lazy-recovery final
     * reconcile, which runs while foreground transactions are in
     * flight and must keep masking their live reservations (and any
     * not-yet-released holds) out of the free map. Either way the
     * lazy scan session ends here: its accumulated salvage stats are
     * folded into the returned stats.
     */
    RebuildStats rebuild(bool keepSession = false);

    /**
     * Arm an incremental (lazy) rebuild instead of scanning the whole
     * bitmap: discard all volatile state (fresh-process semantics),
     * heal the header and quarantine table — the O(1) prefix of
     * rebuild() — and leave the free map empty. reserve() then pulls
     * chunks of the bitmap scan on demand; rebuild(true) reconciles at
     * the end. Bounded by metadata size, not pool size.
     */
    void beginLazyRebuild();

    /** Is an armed lazy rebuild still the source of the free map? */
    bool lazyRebuildActive() const;

    /**
     * Pin [off, off+bytes) out of the free map until releaseHolds(tid)
     * — lazy recovery's guard for blocks whose allocation bits may
     * have been torn by the crash (the owning slot's intent table is
     * the truth until that slot heals).
     */
    void addHold(unsigned tid, uint64_t off, uint64_t bytes);

    /** Drop every hold owned by `tid` (its slot healed). */
    void releaseHolds(unsigned tid);

    /** Outstanding hold ranges (diagnostics / tests). */
    size_t holdCount() const;

    /**
     * Persistently quarantine [payloadOff-16, ...) covering `bytes`
     * of payload: record a table entry and force the bitmap bits
     * allocated. Idempotent for an already-covered range.
     */
    void quarantine(uint64_t blockOff, uint64_t bytes,
                    QuarantineReason reason);

    /** Is any byte of [off, off+n) inside a quarantined range? */
    bool isQuarantined(uint64_t off, uint64_t n) const;
    uint32_t quarantineCount() const;
    uint64_t quarantinedBytes() const;

    /** Does any free extent overlap a quarantined range? (Torture
     *  invariant: must always be false.) */
    bool quarantineViolation() const;

    /** Total bytes in free extents (diagnostics / tests). */
    size_t freeBytes() const;

    /** Number of free extents (fragmentation diagnostics). */
    size_t freeExtents() const;

    /** @name Layout accessors (fault-region map, offline verify) */
    /// @{
    uint64_t bitmapOff() const { return hdr().bitmapOff; }
    uint64_t bitmapBytes() const { return hdr().bitmapBytes; }
    uint64_t dataOff() const { return hdr().dataOff; }
    uint64_t dataBytes() const { return hdr().dataBytes; }
    uint64_t quarTableOff() const { return hdr().quarOff; }
    /// @}

    nvm::Pool& pool() { return pool_; }

 private:
    const AllocHeader& hdr() const;
    AllocHeader expectedHeader() const;
    QuarantineTable* quarTable() const;
    void quarantineLocked(uint64_t off, uint64_t bytes,
                          QuarantineReason reason);
    bool isQuarantinedLocked(uint64_t off, uint64_t n) const;
    uint64_t blockOff(uint64_t payloadOff) const
    {
        return payloadOff - sizeof(BlockHeader);
    }
    uint64_t blockGranules(uint64_t payloadOff) const;
    void setBits(uint64_t blockOff, uint64_t granules, bool value,
                 bool flushBits);
    void insertFreeExtentLocked(uint64_t off, uint64_t len);
    /** insertFreeExtentLocked minus hold/reservation overlaps. */
    void insertFreeRunMaskedLocked(uint64_t off, uint64_t len);
    uint64_t reserveLocked(uint64_t need);
    void healMetaLocked(RebuildStats* st);
    bool lazyStepLocked(uint64_t chunks);
    bool scannedLocked(uint64_t blockOff, uint64_t granules) const;

    /** A heap range pinned until its owning slot heals. */
    struct Hold {
        unsigned tid;
        uint64_t off;
        uint64_t bytes;
    };

    nvm::Pool& pool_;
    mutable std::mutex mu_;
    /** offset -> length, coalesced free extents (absolute pool offsets) */
    std::map<uint64_t, uint64_t> free_;
    /** length -> offset index for best-fit */
    std::multimap<uint64_t, uint64_t> bySize_;
    /** block offset -> total bytes of live volatile reservations (bits
     *  still clear on media; a concurrent rebuild must not free them) */
    std::map<uint64_t, uint64_t> reserved_;
    std::vector<Hold> holds_;
    /** @name Lazy (incremental) rebuild session */
    /// @{
    bool lazyActive_ = false;
    bool lazyScanDone_ = false;
    uint64_t lazyCursor_ = 0;     ///< bitmap bytes consumed so far
    uint64_t lazyRunStartG_ = 0;  ///< open free-run start granule
    bool lazyInRun_ = false;
    RebuildStats lazyStats_{};    ///< salvage found by lazy steps
    /// @}
};

}  // namespace cnvm::alloc

#endif  // CNVM_ALLOC_PM_ALLOCATOR_H
