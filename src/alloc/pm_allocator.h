/**
 * @file
 * Failure-atomic persistent heap allocator (the pmalloc substrate).
 *
 * Mirrors the structure of PMDK's allocator, which Clobber-NVM builds
 * on: allocations are *reserved* volatilely during a transaction and only
 * become persistent at commit, driven by the owning runtime's intent log
 * (redo). Frees are deferred to commit. Consequences:
 *
 *  - a crash mid-transaction leaks nothing: unreserved state is exactly
 *    what the persistent bitmap describes;
 *  - a crash mid-commit is repaired from the runtime's persistent intent
 *    log by idempotent bit writes (revertBits);
 *  - Clobber-NVM's re-execution path simply re-reserves — the volatile
 *    free map is rebuilt from the (unchanged) bitmap first, so recovery
 *    is deterministic.
 *
 * Persistent layout inside the pool's heap region:
 *
 *   [ AllocHeader | allocation bitmap (1 bit / 16-byte granule) | data ]
 *
 * Every block is preceded by a 16-byte header recording its payload
 * size (needed by free and by bit reverts).
 */
#ifndef CNVM_ALLOC_PM_ALLOCATOR_H
#define CNVM_ALLOC_PM_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <mutex>

#include "nvm/pool.h"

namespace cnvm::alloc {

constexpr uint64_t kGranule = 16;

/** Persistent header at the start of the heap region. */
struct AllocHeader {
    uint64_t magic;
    uint64_t bitmapOff;    ///< pool offset of the bitmap
    uint64_t bitmapBytes;
    uint64_t dataOff;      ///< pool offset of the first granule
    uint64_t dataBytes;
};

/** Per-block persistent header (16 bytes, precedes the payload). */
struct BlockHeader {
    uint64_t payloadBytes;
    uint64_t check;        ///< payloadBytes ^ kBlockMagic
};

class PmAllocator {
 public:
    static constexpr uint64_t kMagic = 0xA110CA7EDB17ull;
    static constexpr uint64_t kBlockMagic = 0xB10CB10CB10CB10Cull;

    /** Attach to (formatting if necessary) the pool's heap region. */
    explicit PmAllocator(nvm::Pool& pool);

    PmAllocator(const PmAllocator&) = delete;
    PmAllocator& operator=(const PmAllocator&) = delete;

    /**
     * Volatile-reserve a block with `payload` usable bytes.
     * @return pool offset of the payload (16-byte aligned).
     */
    uint64_t reserve(size_t payload);

    /** Roll back a reservation that never committed. */
    void releaseReservation(uint64_t payloadOff);

    /** Payload size recorded in the block header. */
    size_t payloadSize(uint64_t payloadOff) const;

    /**
     * Commit a reservation: set its bitmap bits and flush them (plus
     * the block header). The caller issues the ordering fence.
     */
    void persistAllocate(uint64_t payloadOff);

    /**
     * Commit a deferred free: clear bitmap bits, flush, and return the
     * space to the volatile free map. Caller issues the fence.
     */
    void persistFree(uint64_t payloadOff);

    /**
     * Recovery: force the bitmap bits of a block to `allocated`.
     * Idempotent; used when replaying/reverting intent logs. The size
     * comes from the caller's intent table — the block header itself
     * may have been torn by the crash.
     */
    void revertBits(uint64_t payloadOff, size_t payloadBytes,
                    bool allocated);

    /** Rebuild the volatile free map from the persistent bitmap. */
    void rebuild();

    /** Total bytes in free extents (diagnostics / tests). */
    size_t freeBytes() const;

    /** Number of free extents (fragmentation diagnostics). */
    size_t freeExtents() const;

    nvm::Pool& pool() { return pool_; }

 private:
    const AllocHeader& hdr() const;
    uint64_t blockOff(uint64_t payloadOff) const
    {
        return payloadOff - sizeof(BlockHeader);
    }
    uint64_t blockGranules(uint64_t payloadOff) const;
    void setBits(uint64_t blockOff, uint64_t granules, bool value,
                 bool flushBits);
    void insertFreeExtentLocked(uint64_t off, uint64_t len);
    uint64_t reserveLocked(uint64_t need);

    nvm::Pool& pool_;
    mutable std::mutex mu_;
    /** offset -> length, coalesced free extents (absolute pool offsets) */
    std::map<uint64_t, uint64_t> free_;
    /** length -> offset index for best-fit */
    std::multimap<uint64_t, uint64_t> bySize_;
};

}  // namespace cnvm::alloc

#endif  // CNVM_ALLOC_PM_ALLOCATOR_H
