#!/usr/bin/env bash
# Rebuild and run the transaction hot-path microbenchmark, merging the
# result into BENCH_txpath.json at the repo root under a label.
#
# usage: scripts/bench_txpath.sh [label]
#
# The default label is "current". The committed "baseline" series was
# captured at the pre-overhaul commit with the same bench definition,
# so the two are directly comparable.
#
# Knobs (env): CNVM_OPS (txfunc calls/thread, default 800000),
# CNVM_MAXTHREADS, CNVM_POOL_MB, BUILD_DIR (default build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
LABEL="${1:-current}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target micro_txpath -j "$(nproc)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD_DIR/bench/micro_txpath" "$TMP"

python3 - "$TMP" "$LABEL" <<'EOF'
import json, os, sys

run_path, label = sys.argv[1], sys.argv[2]
out = "BENCH_txpath.json"
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
with open(run_path) as f:
    doc[label] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
echo "updated $(pwd)/BENCH_txpath.json (label: $LABEL)"
