#!/usr/bin/env bash
# Rebuild and run the log-writer shootout microbenchmark, merging the
# result into BENCH_logwriter.json at the repo root under a label.
#
# usage: scripts/bench_logwriter.sh [label]
#
# The default label is "current". One run sweeps the full matrix
# internally (writer x protocol x op x threads via
# rt::selectLogWriter), so the baseline-writer rows double as the
# ablation reference for the zero/zerocached rows of the same run —
# no pre-change capture is needed.
#
# Knobs (env): CNVM_OPS (txfunc calls/thread, default 400000),
# CNVM_MAXTHREADS, CNVM_POOL_MB, BUILD_DIR (default build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
LABEL="${1:-current}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target micro_logwriter -j "$(nproc)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD_DIR/bench/micro_logwriter" "$TMP"

python3 - "$TMP" "$LABEL" <<'EOF'
import json, os, sys

run_path, label = sys.argv[1], sys.argv[2]
out = "BENCH_logwriter.json"
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
with open(run_path) as f:
    doc[label] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
echo "updated $(pwd)/BENCH_logwriter.json (label: $LABEL)"
