#!/usr/bin/env bash
# Rebuild and run the KV-server serving-stack benchmark, merging the
# result into BENCH_kvserver.json at the repo root under a label.
#
# usage: scripts/bench_kvserver.sh [label]
#
# The default label is "current". One run sweeps the full matrix
# internally (protocol x workers x batch cap x mix over a loopback
# TCP connection), so batch=1 rows are the group-commit ablation
# baseline for the batch=8 rows of the same run.
#
# Knobs (env): CNVM_OPS (ops per configuration, default 60000),
# CNVM_POOL_MB, BUILD_DIR (default build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
LABEL="${1:-current}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target micro_kvserver -j "$(nproc)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
"$BUILD_DIR/bench/micro_kvserver" "$TMP"

python3 - "$TMP" "$LABEL" <<'EOF'
import json, os, sys

run_path, label = sys.argv[1], sys.argv[2]
out = "BENCH_kvserver.json"
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
with open(run_path) as f:
    doc[label] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
echo "updated $(pwd)/BENCH_kvserver.json (label: $LABEL)"
