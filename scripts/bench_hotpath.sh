#!/usr/bin/env bash
# Rebuild and run the NVM hot-path microbenchmark, refreshing
# BENCH_hotpath.json at the repo root.
#
# Knobs (env): CNVM_OPS (stores/thread, default 1000000),
# CNVM_MAXTHREADS, CNVM_POOL_MB, BUILD_DIR (default build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target micro_hotpath -j "$(nproc)"

CNVM_OPS="${CNVM_OPS:-1000000}" \
    "$BUILD_DIR/bench/micro_hotpath" BENCH_hotpath.json
echo "wrote $(pwd)/BENCH_hotpath.json"
