#!/usr/bin/env bash
# clang-tidy gate for CI and local use: runs the pinned check set
# (.clang-tidy) over the first-party sources against a
# compile_commands.json build. Exits 0 with a notice when clang-tidy
# is not installed, so local builds on minimal machines are never
# blocked.
set -u

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy: $TIDY not found; skipping tidy check" >&2
    exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
fi

mapfile -t files < <(find src \
    \( -name '*.cc' -o -name '*.cpp' \) | sort)

if [ "${#files[@]}" -eq 0 ]; then
    echo "run_clang_tidy: no sources found" >&2
    exit 1
fi

# Warnings from the pinned WarningsAsErrors list fail the run; the
# remainder of bugprone-*/performance-*/concurrency-* is advisory.
if "$TIDY" -p "$BUILD_DIR" --quiet "${files[@]}"; then
    echo "run_clang_tidy: ${#files[@]} files clean"
    exit 0
fi

echo "" >&2
echo "run_clang_tidy: findings above (config: .clang-tidy)" >&2
exit 1
