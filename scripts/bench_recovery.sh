#!/usr/bin/env bash
# Rebuild and run the recovery benchmark's instant-restart sweep,
# merging the result into BENCH_recovery.json at the repo root under
# a label.
#
# usage: scripts/bench_recovery.sh [label]
#
# The default label is "current". One run sweeps full-vs-lazy restart
# (time-to-first-transaction) over clobber and pmdk at 64/256/512 MiB
# pools, so the full-restart rows of the same run are the ablation
# reference for the lazy rows — no pre-change capture is needed. The
# acceptance bar lives in the largest pool's rows: lazy TTFT should be
# >=10x below full there.
#
# Knobs (env): CNVM_OPS (loaded pairs x2, default 20000), CNVM_REPS
# (per-cell repetitions, best kept, default 3), CNVM_SMOKE=1 (64 MiB
# pool only), BUILD_DIR (default build).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
LABEL="${1:-current}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target fig9_recovery -j "$(nproc)"

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
# The TTFT sweep runs before the google-benchmark figure loop; the
# filter below skips the (slow) figure benchmarks themselves.
"$BUILD_DIR/bench/fig9_recovery" "$TMP" --benchmark_filter='^$' || true

python3 - "$TMP" "$LABEL" <<'EOF'
import json, os, sys

run_path, label = sys.argv[1], sys.argv[2]
out = "BENCH_recovery.json"
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
with open(run_path) as f:
    doc[label] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
EOF
echo "updated $(pwd)/BENCH_recovery.json (label: $LABEL)"
