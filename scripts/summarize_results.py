#!/usr/bin/env python3
"""Summarize the fig*.csv outputs of the bench harness into markdown.

Usage: scripts/summarize_results.py [results-dir]

Reads the figN.csv files the bench binaries write (artifact-style rows)
and prints, per figure, the comparison table EXPERIMENTS.md embeds:
single-thread and max-thread throughputs with ratios for Figure 6/10,
per-transaction log volumes for Figures 7/8, and so on.
"""
import csv
import json
import os
import sys
from collections import defaultdict


def read(path):
    rows = []
    if not os.path.exists(path):
        return rows
    with open(path) as f:
        for row in csv.reader(f):
            if not row or row[0].startswith('#'):
                continue
            rows.append(row)
    return rows


def fig6(d):
    rows = read(os.path.join(d, 'fig6.csv'))
    if not rows:
        return
    # system,structure,threads,run,valsize,tput
    data = defaultdict(dict)
    threads = set()
    for sysname, structure, t, _run, _vs, tput in rows:
        data[structure][(sysname, int(t))] = float(tput)
        threads.add(int(t))
    tmax = max(threads)
    print('\n### Figure 6 — data-structure throughput (ops/s)\n')
    print('| structure | system | 1 thread | %d threads | clobber/x @1T |' % tmax)
    print('|---|---|---|---|---|')
    for structure in sorted(data):
        base = data[structure].get(('clobber', 1), 0)
        for sysname in ('clobber', 'pmdk', 'mnemosyne', 'atlas'):
            t1 = data[structure].get((sysname, 1))
            tn = data[structure].get((sysname, tmax))
            if t1 is None:
                continue
            ratio = base / t1 if t1 else float('nan')
            print('| %s | %s | %.0f | %.0f | %.2fx |' %
                  (structure, sysname, t1, tn or 0, ratio))


def fig7(d):
    rows = read(os.path.join(d, 'fig7.csv'))
    if not rows:
        return
    print('\n### Figure 7 — logging breakdown (single thread)\n')
    print('| config | structure | ops/s | entries/tx | bytes/tx |'
          ' fences/tx |')
    print('|---|---|---|---|---|---|')
    for cfg, structure, tput, entries, byts, fences in rows:
        print('| %s | %s | %.0f | %s | %s | %s |' %
              (cfg, structure, float(tput), entries, byts, fences))


def fig8(d):
    rows = read(os.path.join(d, 'fig8.csv'))
    if not rows:
        return
    data = defaultdict(dict)
    for sysname, structure, entries, byts in rows:
        data[structure][sysname] = (float(entries), float(byts))
    print('\n### Figure 8 — iDO vs Clobber log volume per transaction\n')
    print('| structure | ido bytes/tx | clobber bytes/tx | ratio |'
          ' entries ratio |')
    print('|---|---|---|---|---|')
    for structure in sorted(data):
        if 'ido' not in data[structure]:
            continue
        ie, ib = data[structure]['ido']
        ce, cb = data[structure]['clobber']
        print('| %s | %.0f | %.0f | %.1fx | %.1fx |' %
              (structure, ib, cb, ib / cb, ie / ce))


def fig9(d):
    rows = read(os.path.join(d, 'fig9.csv'))
    if not rows:
        return
    agg = defaultdict(lambda: [0.0, 0.0, 0])
    for sysname, structure, _crash, total, rebuild in rows:
        a = agg[(structure, sysname)]
        a[0] += float(total)
        a[1] += float(rebuild)
        a[2] += 1
    print('\n### Figure 9 — recovery latency (us, mean over runs)\n')
    print('| structure | system | recover | pool mgmt (rebuild) |')
    print('|---|---|---|---|')
    for (structure, sysname) in sorted(agg):
        t, r, n = agg[(structure, sysname)]
        print('| %s | %s | %.0f | %.0f |' %
              (structure, sysname, t / n, r / n))


def fig10(d):
    rows = read(os.path.join(d, 'fig10.csv'))
    if not rows:
        return
    data = defaultdict(dict)
    threads = set()
    for sysname, wl, lock, t, tput in rows:
        data[(wl, lock)][(sysname, int(t))] = float(tput)
        threads.add(int(t))
    tmax = max(threads)
    print('\n### Figure 10 — memcached model (ops/s)\n')
    print('| workload | lock | system | 1 thread | %d threads |' % tmax)
    print('|---|---|---|---|---|')
    for (wl, lock) in sorted(data):
        for sysname in ('clobber', 'pmdk', 'mnemosyne'):
            t1 = data[(wl, lock)].get((sysname, 1))
            tn = data[(wl, lock)].get((sysname, tmax))
            if t1 is None:
                continue
            print('| %s | %s | %s | %.0f | %.0f |' %
                  (wl, lock, sysname, t1, tn or 0))


def fig11(d):
    rows = read(os.path.join(d, 'fig11.csv'))
    if not rows:
        return
    print('\n### Figure 11 — vacation (tasks/s, overhead vs No-log)\n')
    print('| system | table | queries/task | tasks/s | overhead % |')
    print('|---|---|---|---|---|')
    for sysname, table, q, tput, ovh in rows:
        print('| %s | %s | %s | %.0f | %s |' %
              (sysname, table, q, float(tput), ovh))


def fig12(d):
    rows = read(os.path.join(d, 'fig12.csv'))
    if not rows:
        return
    print('\n### Figure 12 — yada (simulated seconds per full run)\n')
    print('| system | angle | elapsed (s) | steps | mesh size |'
          ' overhead % |')
    print('|---|---|---|---|---|---|')
    for sysname, angle, secs, steps, mesh, ovh in rows:
        print('| %s | %s | %s | %s | %s | %s |' %
              (sysname, angle, secs, steps, mesh, ovh))


def fig13(d):
    rows = read(os.path.join(d, 'fig13.csv'))
    if not rows:
        return
    print('\n### Figure 13 — refinement effectiveness\n')
    print('| workload | conservative ops/s | refined ops/s |'
          ' improvement % | unopt extra entries % | extra bytes % |')
    print('|---|---|---|---|---|---|')
    for wl, ct, rt, imp, ee, eb in rows:
        print('| %s | %.0f | %.0f | %s | %s | %s |' %
              (wl, float(ct), float(rt), imp, ee, eb))


def fig14(d):
    rows = read(os.path.join(d, 'fig14.csv'))
    if not rows:
        return
    print('\n### Figure 14 — compile-time overhead\n')
    print('| module | functions | baseline (ms) | with passes (ms) |'
          ' overhead % |')
    print('|---|---|---|---|---|')
    for mod, fns, base, full, ovh in rows:
        print('| %s | %s | %s | %s | %s |' % (mod, fns, base, full, ovh))


def ablation(d):
    rows = read(os.path.join(d, 'ablation_lazy_begin.csv'))
    if not rows:
        return
    print('\n### Ablation — lazy vs eager begin persistence\n')
    print('| system | workload | mode | ops/s | fences/op |')
    print('|---|---|---|---|---|')
    for sysname, wl, mode, tput, fences in rows:
        print('| %s | %s | %s | %.0f | %s |' %
              (sysname, wl, mode, float(tput), fences))


def read_json(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def logwriter(d):
    doc = read_json(os.path.join(d, 'BENCH_logwriter.json'))
    if not doc:
        return
    print('\n### Log-writer shootout (BENCH_logwriter.json)\n')
    print('| label | op | system | threads | writer | Mops/s |'
          ' vs baseline | fences/tx |')
    print('|---|---|---|---|---|---|---|---|')
    for label, run in sorted(doc.items()):
        base = {}
        for row in run.get('series', []):
            key = (row['op'], row['system'], row['threads'])
            if row['writer'] == 'baseline':
                base[key] = row['ops_per_sec']
        for row in run.get('series', []):
            key = (row['op'], row['system'], row['threads'])
            b = base.get(key)
            rel = ('%.2fx' % (row['ops_per_sec'] / b)
                   if b else 'n/a')
            print('| %s | %s | %s | %d | %s | %.2f | %s | %.1f |' %
                  (label, row['op'], row['system'], row['threads'],
                   row['writer'], row['ops_per_sec'] / 1e6, rel,
                   row.get('fences_per_tx', float('nan'))))


def recovery(d):
    doc = read_json(os.path.join(d, 'BENCH_recovery.json'))
    if not doc:
        return
    print('\n### Instant restart — time to first transaction '
          '(BENCH_recovery.json)\n')
    print('| label | system | pool MB | full TTFT us | lazy TTFT us |'
          ' speedup | lazy admit us | pending @first tx |')
    print('|---|---|---|---|---|---|---|---|')
    for label, run in sorted(doc.items()):
        cells = {}
        for row in run.get('ttft', []):
            cells.setdefault((row['system'], row['pool_mb']),
                             {})[row['mode']] = row
        for (sysname, mb) in sorted(cells):
            full = cells[(sysname, mb)].get('full')
            lazy = cells[(sysname, mb)].get('lazy')
            if full is None or lazy is None:
                continue
            sp = (full['ttft_us'] / lazy['ttft_us']
                  if lazy['ttft_us'] else float('nan'))
            print('| %s | %s | %d | %.0f | %.0f | %.1fx | %.0f |'
                  ' %d |' %
                  (label, sysname, mb, full['ttft_us'],
                   lazy['ttft_us'], sp, lazy['recover_us'],
                   lazy['pending_at_first_tx']))


def kvserver(d):
    doc = read_json(os.path.join(d, 'BENCH_kvserver.json'))
    if not doc:
        return
    print('\n### KV service — group commit & worker scaling '
          '(BENCH_kvserver.json)\n')
    print('| label | system | mix | workers | batch=1 ops/s |'
          ' batch=8 ops/s | speedup | p50/p95/p99 us (batch=8) |')
    print('|---|---|---|---|---|---|---|---|')
    for label, run in sorted(doc.items()):
        cells = {}
        for row in run.get('series', []):
            key = (row['system'], row['mix'], row['workers'])
            cells.setdefault(key, {})[row['batch']] = row
        for (sysname, mix, workers) in sorted(cells):
            byb = cells[(sysname, mix, workers)]
            b1 = byb.get(1)
            bn = byb.get(max(byb))
            if b1 is None or bn is b1:
                continue
            sp = (bn['ops_per_sec'] / b1['ops_per_sec']
                  if b1['ops_per_sec'] else float('nan'))
            print('| %s | %s | %s | %d | %.0f | %.0f | %.2fx |'
                  ' %.0f/%.0f/%.0f |' %
                  (label, sysname, mix, workers, b1['ops_per_sec'],
                   bn['ops_per_sec'], sp, bn['p50_us'], bn['p95_us'],
                   bn['p99_us']))


def main():
    d = sys.argv[1] if len(sys.argv) > 1 else '.'
    for fn in (fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
               fig14, ablation, logwriter, recovery, kvserver):
        fn(d)


if __name__ == '__main__':
    main()
