#!/usr/bin/env bash
# Kill-mid-traffic torture for the network KV server.
#
# Per protocol, per round: start cnvm_kvserver on the same pool file,
# verify the PREVIOUS round's shadow journals against the recovered
# store, then drive write-heavy shadowed traffic and SIGKILL the
# server while it is in flight. A final restart verifies the last
# round's journals. The invariant under test: every mutation the
# server acked is durable (acks are sent only after the covering
# transaction commits); unacked in-flight mutations may land either
# way, and the shadow verifier allows exactly that.
#
#   BUILD_DIR=build scripts/torture_kvserver.sh [--recovery full|lazy]
#
# Knobs: CNVM_SMOKE=1 shrinks rounds/ops for CI; CNVM_KV_PROTOCOLS
# overrides the protocol list; CNVM_KV_ROUNDS the kill count.
# --recovery lazy restarts the server in instant-restart mode: it
# serves right after triage while the background healer drains, and
# every restart after the first additionally lands a SECOND SIGKILL
# right after READY — i.e. while recovery itself is still in flight —
# before the restart that verifies the journals.
set -u

BUILD_DIR=${BUILD_DIR:-build}
SERVER="$BUILD_DIR/tools/cnvm_kvserver"
LOAD="$BUILD_DIR/tools/cnvm_kvload"
PROTOCOLS=${CNVM_KV_PROTOCOLS:-"clobber pmdk mnemosyne"}
ROUNDS=${CNVM_KV_ROUNDS:-3}
RECOVERY_MODE=full
while [ $# -gt 0 ]; do
    case "$1" in
        --recovery) RECOVERY_MODE=$2; shift 2 ;;
        *) echo "unknown argument: $1"; exit 2 ;;
    esac
done
case "$RECOVERY_MODE" in full|lazy) ;; *)
    echo "bad --recovery (want full|lazy)"; exit 2 ;;
esac
CONNS=2
WORKERS=2
KILL_DELAY=1.5
if [ "${CNVM_SMOKE:-0}" = "1" ]; then
    ROUNDS=2
    KILL_DELAY=0.6
fi

[ -x "$SERVER" ] || { echo "missing $SERVER (build first)"; exit 2; }
[ -x "$LOAD" ] || { echo "missing $LOAD (build first)"; exit 2; }

TMP=$(mktemp -d /tmp/cnvm_kvtorture.XXXXXX)
SRV_PID=""
LOAD_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
    [ -n "$LOAD_PID" ] && kill "$LOAD_PID" 2>/dev/null
    wait 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT

start_server() { # proto pool portfile logfile
    rm -f "$3"
    "$SERVER" --pool "$2" --protocol "$1" --workers $WORKERS \
              --batch 8 --port 0 --port-file "$3" \
              --recovery "$RECOVERY_MODE" >"$4" 2>&1 &
    SRV_PID=$!
    for _ in $(seq 1 200); do
        [ -s "$3" ] && return 0
        kill -0 "$SRV_PID" 2>/dev/null || break
        sleep 0.05
    done
    echo "FAIL($1): server did not come up"; cat "$4"; exit 1
}

fail=0
for proto in $PROTOCOLS; do
    pool="$TMP/kv_$proto.pool"
    prev_shadow=""
    round=1
    while [ "$round" -le "$ROUNDS" ]; do
        portf="$TMP/port.$proto.$round"
        slog="$TMP/server.$proto.$round.log"
        start_server "$proto" "$pool" "$portf" "$slog"

        if [ "$RECOVERY_MODE" = "lazy" ] && [ -n "$prev_shadow" ]; then
            # Second kill, landing while lazy recovery is still in
            # flight (the healer may be mid-drain, the heap rebuild
            # mid-scan). The restart below must re-triage and still
            # satisfy the journal verification.
            kill -9 "$SRV_PID" 2>/dev/null
            wait "$SRV_PID" 2>/dev/null
            SRV_PID=""
            portf="$TMP/port.$proto.$round.re"
            slog="$TMP/server.$proto.$round.re.log"
            start_server "$proto" "$pool" "$portf" "$slog"
        fi

        if [ -n "$prev_shadow" ]; then
            if ! "$LOAD" --port-file "$portf" --conns $CONNS \
                         --verify "$prev_shadow"; then
                echo "FAIL($proto round $round): integrity violation" \
                     "after kill -9 (see above)"
                grep RECOVERY "$slog" || true
                fail=1
            fi
        fi

        shadow="$TMP/shadow.$proto.$round"
        rm -f "$shadow".*
        "$LOAD" --port-file "$portf" --conns $CONNS --ops 100000000 \
                --window 16 --write 0.9 --keys 2000 \
                --shadow "$shadow" --expect-kill --max-seconds 60 \
                >"$TMP/load.$proto.$round.log" 2>&1 &
        LOAD_PID=$!

        sleep "$KILL_DELAY"
        kill -9 "$SRV_PID" 2>/dev/null
        wait "$LOAD_PID" 2>/dev/null
        LOAD_PID=""
        wait "$SRV_PID" 2>/dev/null
        SRV_PID=""
        grep -q "died=1" "$TMP/load.$proto.$round.log" || {
            echo "WARN($proto round $round): load finished before" \
                 "the kill; round exercised clean shutdown only"
        }

        prev_shadow="$shadow"
        round=$((round + 1))
    done

    # Final restart: recovery after the last kill, then verify.
    portf="$TMP/port.$proto.final"
    slog="$TMP/server.$proto.final.log"
    start_server "$proto" "$pool" "$portf" "$slog"
    if ! "$LOAD" --port-file "$portf" --conns $CONNS \
                 --verify "$prev_shadow"; then
        echo "FAIL($proto final): integrity violation (see above)"
        grep RECOVERY "$slog" || true
        fail=1
    fi
    kill "$SRV_PID" 2>/dev/null
    wait "$SRV_PID" 2>/dev/null
    SRV_PID=""
    echo "OK($proto): $ROUNDS kill(s), recovery=$RECOVERY_MODE," \
         "acked data intact"
done

if [ "$fail" -ne 0 ]; then
    echo "kvserver torture: FAILED"
    exit 1
fi
echo "kvserver torture: all protocols passed"
