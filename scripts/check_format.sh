#!/usr/bin/env bash
# Formatting gate for CI and pre-commit use: runs clang-format in dry
# mode over the first-party C++ sources and fails on any diff. Exits
# 0 with a notice when clang-format is not installed, so local builds
# on minimal machines are never blocked.
set -u

cd "$(dirname "$0")/.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
    echo "check_format: $FMT not found; skipping format check" >&2
    exit 0
fi

mapfile -t files < <(find src tools tests bench \
    \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)

if [ "${#files[@]}" -eq 0 ]; then
    echo "check_format: no sources found" >&2
    exit 1
fi

if "$FMT" --dry-run -Werror "${files[@]}"; then
    echo "check_format: ${#files[@]} files clean"
    exit 0
fi

echo "" >&2
echo "check_format: style violations found." >&2
echo "Fix with: $FMT -i <file>  (config: .clang-format)" >&2
exit 1
