/**
 * @file
 * cnvm_inspect: offline pool inspector.
 *
 * Default mode prints a pool file's header, the state of every
 * per-thread transaction descriptor (status, sequence number, v_log
 * payload, intent table validity, pending log entries), and heap
 * statistics — without mutating anything. Useful for debugging
 * recovery issues and for verifying what survived a crash.
 *
 * `verify` mode walks the whole pool through the salvage scanner
 * (rt::salvage::verifyPool): header bounds, per-slot descriptor and
 * log checksums, allocator metadata, quarantine table and allocated
 * block headers, printing every integrity violation it finds. It then
 * reports the pending-recovery state per region — the same read-only
 * classification recoveryTriage() computes: which slots a lazy
 * restart would leave pending (and why), and which heap ranges it
 * would pin until the owning slot heals. Exit status: 0 clean,
 * 1 problems found, 2 usage / unreadable pool.
 *
 * Usage:
 *   cnvm_inspect <pool-file>
 *   cnvm_inspect verify <pool-file>
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "runtimes/salvage.h"
#include "txn/registry.h"

using namespace cnvm;

namespace {

const char*
statusName(uint64_t s)
{
    switch (static_cast<rt::TxStatus>(s)) {
      case rt::TxStatus::idle: return "idle";
      case rt::TxStatus::ongoing: return "ONGOING";
      case rt::TxStatus::committing: return "COMMITTING";
    }
    return "corrupt";
}

/**
 * Read-only mirror of RuntimeBase::recoveryTriage()'s classification:
 * what a lazy restart would leave pending per slot, and which heap
 * ranges it would pin (holds) until the owning slot heals. Uses the
 * same media guards as triage (checkRead + isTainted over the begin
 * record, the guarded intent-table probe) and, like triage, never
 * writes to the pool.
 */
void
reportPendingRecovery(nvm::Pool& pool)
{
    constexpr size_t beginBytes = offsetof(rt::TxDescriptor, intentSeq);
    constexpr size_t tableBytes =
        sizeof(rt::TxDescriptor) - offsetof(rt::TxDescriptor, intentSeq);
    unsigned pending = 0;
    unsigned holdRanges = 0;
    uint64_t holdBytes = 0;
    for (unsigned tid = 0; tid < pool.maxThreads(); tid++) {
        const auto& d =
            *static_cast<const rt::TxDescriptor*>(pool.slot(tid));
        bool damaged = pool.isTainted(&d, beginBytes);
        if (!damaged) {
            try {
                pool.checkRead(&d, beginBytes);
            } catch (const nvm::MediaFaultError&) {
                damaged = true;
            }
        }
        // Guarded intent-table probe (liveIntentsGuarded): 1 = live
        // table, -1 = unreadable/corrupt (heal records it as lost),
        // 0 = nothing there.
        int intents = 0;
        bool live = d.intentSeq == d.txSeq && d.intentCount > 0 &&
                    d.intentCount <= rt::kMaxIntents;
        try {
            pool.checkRead(&d.intentSeq, tableBytes);
            if (live &&
                rt::salvage::intentChecksum(d.intentSeq, d.intentCount,
                                            d.intents) == d.intentSum)
                intents = 1;
            else if (live && pool.isTainted(&d.intentSeq, tableBytes))
                intents = -1;
        } catch (const nvm::MediaFaultError&) {
            intents = -1;
        }

        const char* cls = nullptr;
        if (damaged) {
            cls = "damaged descriptor (heal aborts + quarantines)";
        } else if (d.status ==
                       static_cast<uint64_t>(rt::TxStatus::ongoing) &&
                   d.argLen <= rt::kMaxArgBytes &&
                   rt::salvage::beginChecksum(d) == d.beginSum) {
            cls = "interrupted transaction (heal rolls back or "
                  "re-executes)";
        } else if (d.status == static_cast<uint64_t>(
                                   rt::TxStatus::committing)) {
            cls = "interrupted commit (heal completes it)";
        } else if (intents != 0) {
            cls = intents > 0
                      ? "idle slot with live intent table (heal "
                        "settles the allocations)"
                      : "idle slot with corrupt intent table (heal "
                        "records the allocations as lost)";
        }
        if (cls == nullptr)
            continue;
        pending++;
        std::printf("pending: slot %u seq=%llu: %s\n", tid,
                    static_cast<unsigned long long>(d.txSeq), cls);
        if (!damaged && intents == 1) {
            for (uint32_t i = 0; i < d.intentCount; i++) {
                const rt::AllocIntent& in = d.intents[i];
                uint64_t off =
                    in.payloadOff - sizeof(alloc::BlockHeader);
                uint64_t bytes =
                    (sizeof(alloc::BlockHeader) + in.payloadBytes +
                     alloc::kGranule - 1) /
                    alloc::kGranule * alloc::kGranule;
                std::printf("pending:   hold [%llu, +%llu) until "
                            "slot %u heals\n",
                            static_cast<unsigned long long>(off),
                            static_cast<unsigned long long>(bytes),
                            tid);
                holdRanges++;
                holdBytes += bytes;
            }
        }
    }
    if (pending == 0) {
        std::printf("recovery: no slot pending — a lazy restart "
                    "admits transactions with nothing to heal\n");
        return;
    }
    std::printf("recovery: %u slot(s) pending", pending);
    if (holdRanges > 0)
        std::printf(", %u heap range(s) / %llu B pinned until their "
                    "slots heal",
                    holdRanges,
                    static_cast<unsigned long long>(holdBytes));
    std::printf("; a lazy restart admits transactions after triage "
                "and heals these on first touch\n");
}

int
verifyMain(const char* path)
{
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    rt::salvage::VerifyResult r = rt::salvage::verifyPool(*pool);
    for (const std::string& n : r.notes)
        std::printf("note:    %s\n", n.c_str());
    for (const std::string& p : r.problems)
        std::printf("PROBLEM: %s\n", p.c_str());
    reportPendingRecovery(*pool);
    std::printf("%s: %zu problem(s), %zu note(s)\n",
                r.ok() ? "CLEAN" : "CORRUPT", r.problems.size(),
                r.notes.size());
    return r.ok() ? 0 : 1;
}

int
inspectMain(const char* path)
{
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    const auto& h = pool->header();
    std::printf("pool %s\n", path);
    std::printf("  size        %llu MiB\n",
                static_cast<unsigned long long>(h.size >> 20));
    std::printf("  root        offset %llu%s\n",
                static_cast<unsigned long long>(h.rootOff),
                h.rootOff == 0 ? " (unset)" : "");
    std::printf("  aux         offset %llu\n",
                static_cast<unsigned long long>(h.auxOff));
    std::printf("  slots       %u x %llu KiB\n", h.maxThreads,
                static_cast<unsigned long long>(h.slotBytes >> 10));
    std::printf("  heap        offset %llu, %llu MiB\n",
                static_cast<unsigned long long>(h.heapOff),
                static_cast<unsigned long long>(h.heapSize >> 20));

    unsigned interrupted = 0;
    for (unsigned tid = 0; tid < pool->maxThreads(); tid++) {
        const auto& d =
            *static_cast<const rt::TxDescriptor*>(pool->slot(tid));
        bool interesting =
            d.status != static_cast<uint64_t>(rt::TxStatus::idle) ||
            (d.intentCount > 0 && d.intentSeq == d.txSeq);
        if (!interesting && d.txSeq == 0)
            continue;  // slot never used
        // The media-aware scanner reports damaged stretches instead
        // of silently truncating at the first bad entry.
        const auto* area =
            static_cast<const uint8_t*>(pool->slot(tid)) +
            rt::logAreaOffset();
        size_t cap = pool->slotBytes() - rt::logAreaOffset();
        std::vector<rt::ScannedEntry> entries;
        rt::salvage::ScanStats st;
        rt::salvage::scanLogArea(nullptr, area, cap,
                                 static_cast<uint32_t>(d.txSeq),
                                 entries, &st);
        std::printf("slot %-2u %-10s seq=%llu", tid,
                    statusName(d.status),
                    static_cast<unsigned long long>(d.txSeq));
        if (d.status ==
            static_cast<uint64_t>(rt::TxStatus::ongoing)) {
            interrupted++;
            bool valid = rt::salvage::beginChecksum(d) == d.beginSum;
            std::printf(" begin=%s fid=0x%08x (%s) args=%uB",
                        valid ? "valid" : "TORN", d.fid,
                        txn::txFuncName(d.fid), d.argLen);
        }
        std::printf(" log: %llu entries / %llu B",
                    static_cast<unsigned long long>(st.entries),
                    static_cast<unsigned long long>(st.payloadBytes));
        if (st.damaged()) {
            std::printf(" [DAMAGED: %llu entries dropped]",
                        static_cast<unsigned long long>(
                            st.droppedEntries));
        }
        if (d.intentCount > 0 && d.intentSeq == d.txSeq) {
            bool ok = d.intentCount <= rt::kMaxIntents &&
                      rt::salvage::intentChecksum(
                          d.intentSeq, d.intentCount, d.intents) ==
                          d.intentSum;
            std::printf(" intents: %u (%s)", d.intentCount,
                        ok ? "valid" : "TORN");
        }
        std::printf("\n");
    }

    // Heap statistics (builds the volatile free map; read-only with
    // respect to persistent state).
    alloc::PmAllocator heap(*pool);
    std::printf("heap: %zu free bytes in %zu extents\n",
                heap.freeBytes(), heap.freeExtents());
    std::printf("%u interrupted transaction(s)%s\n", interrupted,
                interrupted > 0 ? " — run recovery before use" : "");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc == 3 && std::strcmp(argv[1], "verify") == 0)
        return verifyMain(argv[2]);
    if (argc == 2 && std::strcmp(argv[1], "verify") != 0)
        return inspectMain(argv[1]);
    std::fprintf(stderr,
                 "usage: %s <pool-file>\n"
                 "       %s verify <pool-file>\n",
                 argv[0], argv[0]);
    return 2;
}
