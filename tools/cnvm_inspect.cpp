/**
 * @file
 * cnvm_inspect: offline pool inspector.
 *
 * Default mode prints a pool file's header, the state of every
 * per-thread transaction descriptor (status, sequence number, v_log
 * payload, intent table validity, pending log entries), and heap
 * statistics — without mutating anything. Useful for debugging
 * recovery issues and for verifying what survived a crash.
 *
 * `verify` mode walks the whole pool through the salvage scanner
 * (rt::salvage::verifyPool): header bounds, per-slot descriptor and
 * log checksums, allocator metadata, quarantine table and allocated
 * block headers, printing every integrity violation it finds. Exit
 * status: 0 clean, 1 problems found, 2 usage / unreadable pool.
 *
 * Usage:
 *   cnvm_inspect <pool-file>
 *   cnvm_inspect verify <pool-file>
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "runtimes/salvage.h"
#include "txn/registry.h"

using namespace cnvm;

namespace {

const char*
statusName(uint64_t s)
{
    switch (static_cast<rt::TxStatus>(s)) {
      case rt::TxStatus::idle: return "idle";
      case rt::TxStatus::ongoing: return "ONGOING";
      case rt::TxStatus::committing: return "COMMITTING";
    }
    return "corrupt";
}

int
verifyMain(const char* path)
{
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    rt::salvage::VerifyResult r = rt::salvage::verifyPool(*pool);
    for (const std::string& n : r.notes)
        std::printf("note:    %s\n", n.c_str());
    for (const std::string& p : r.problems)
        std::printf("PROBLEM: %s\n", p.c_str());
    std::printf("%s: %zu problem(s), %zu note(s)\n",
                r.ok() ? "CLEAN" : "CORRUPT", r.problems.size(),
                r.notes.size());
    return r.ok() ? 0 : 1;
}

int
inspectMain(const char* path)
{
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    const auto& h = pool->header();
    std::printf("pool %s\n", path);
    std::printf("  size        %llu MiB\n",
                static_cast<unsigned long long>(h.size >> 20));
    std::printf("  root        offset %llu%s\n",
                static_cast<unsigned long long>(h.rootOff),
                h.rootOff == 0 ? " (unset)" : "");
    std::printf("  aux         offset %llu\n",
                static_cast<unsigned long long>(h.auxOff));
    std::printf("  slots       %u x %llu KiB\n", h.maxThreads,
                static_cast<unsigned long long>(h.slotBytes >> 10));
    std::printf("  heap        offset %llu, %llu MiB\n",
                static_cast<unsigned long long>(h.heapOff),
                static_cast<unsigned long long>(h.heapSize >> 20));

    unsigned interrupted = 0;
    for (unsigned tid = 0; tid < pool->maxThreads(); tid++) {
        const auto& d =
            *static_cast<const rt::TxDescriptor*>(pool->slot(tid));
        bool interesting =
            d.status != static_cast<uint64_t>(rt::TxStatus::idle) ||
            (d.intentCount > 0 && d.intentSeq == d.txSeq);
        if (!interesting && d.txSeq == 0)
            continue;  // slot never used
        // The media-aware scanner reports damaged stretches instead
        // of silently truncating at the first bad entry.
        const auto* area =
            static_cast<const uint8_t*>(pool->slot(tid)) +
            rt::logAreaOffset();
        size_t cap = pool->slotBytes() - rt::logAreaOffset();
        std::vector<rt::ScannedEntry> entries;
        rt::salvage::ScanStats st;
        rt::salvage::scanLogArea(nullptr, area, cap,
                                 static_cast<uint32_t>(d.txSeq),
                                 entries, &st);
        std::printf("slot %-2u %-10s seq=%llu", tid,
                    statusName(d.status),
                    static_cast<unsigned long long>(d.txSeq));
        if (d.status ==
            static_cast<uint64_t>(rt::TxStatus::ongoing)) {
            interrupted++;
            bool valid = rt::salvage::beginChecksum(d) == d.beginSum;
            std::printf(" begin=%s fid=0x%08x (%s) args=%uB",
                        valid ? "valid" : "TORN", d.fid,
                        txn::txFuncName(d.fid), d.argLen);
        }
        std::printf(" log: %llu entries / %llu B",
                    static_cast<unsigned long long>(st.entries),
                    static_cast<unsigned long long>(st.payloadBytes));
        if (st.damaged()) {
            std::printf(" [DAMAGED: %llu entries dropped]",
                        static_cast<unsigned long long>(
                            st.droppedEntries));
        }
        if (d.intentCount > 0 && d.intentSeq == d.txSeq) {
            bool ok = d.intentCount <= rt::kMaxIntents &&
                      rt::salvage::intentChecksum(
                          d.intentSeq, d.intentCount, d.intents) ==
                          d.intentSum;
            std::printf(" intents: %u (%s)", d.intentCount,
                        ok ? "valid" : "TORN");
        }
        std::printf("\n");
    }

    // Heap statistics (builds the volatile free map; read-only with
    // respect to persistent state).
    alloc::PmAllocator heap(*pool);
    std::printf("heap: %zu free bytes in %zu extents\n",
                heap.freeBytes(), heap.freeExtents());
    std::printf("%u interrupted transaction(s)%s\n", interrupted,
                interrupted > 0 ? " — run recovery before use" : "");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc == 3 && std::strcmp(argv[1], "verify") == 0)
        return verifyMain(argv[2]);
    if (argc == 2 && std::strcmp(argv[1], "verify") != 0)
        return inspectMain(argv[1]);
    std::fprintf(stderr,
                 "usage: %s <pool-file>\n"
                 "       %s verify <pool-file>\n",
                 argv[0], argv[0]);
    return 2;
}
