/**
 * @file
 * cnvm_inspect: offline pool inspector.
 *
 * Prints a pool file's header, the state of every per-thread
 * transaction descriptor (status, sequence number, v_log payload,
 * intent table validity, pending log entries), and heap statistics —
 * without mutating anything. Useful for debugging recovery issues and
 * for verifying what survived a crash.
 *
 * Usage: cnvm_inspect <pool-file>
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "alloc/pm_allocator.h"
#include "common/rand.h"
#include "nvm/pool.h"
#include "runtimes/descriptor.h"
#include "txn/registry.h"

using namespace cnvm;

namespace {

const char*
statusName(uint64_t s)
{
    switch (static_cast<rt::TxStatus>(s)) {
      case rt::TxStatus::idle: return "idle";
      case rt::TxStatus::ongoing: return "ONGOING";
      case rt::TxStatus::committing: return "COMMITTING";
    }
    return "corrupt";
}

uint64_t
beginChecksum(const rt::TxDescriptor& d)
{
    uint64_t sum = fnv1a(&d.txSeq, sizeof(d.txSeq));
    sum ^= fnv1a(&d.fid, sizeof(d.fid));
    sum ^= fnv1a(&d.argLen, sizeof(d.argLen));
    if (d.argLen > 0 && d.argLen <= rt::kMaxArgBytes)
        sum ^= fnv1a(d.args, d.argLen);
    return sum == 0 ? 1 : sum;
}

uint64_t
intentChecksum(const rt::TxDescriptor& d)
{
    uint64_t sum = fnv1a(&d.intentSeq, sizeof(d.intentSeq));
    sum ^= fnv1a(&d.intentCount, sizeof(d.intentCount));
    sum ^= fnv1a(d.intents, d.intentCount * sizeof(rt::AllocIntent));
    return sum == 0 ? 1 : sum;
}

/** Count self-validating log entries for the descriptor's txSeq. */
size_t
countLogEntries(const nvm::Pool& pool, unsigned tid,
                const rt::TxDescriptor& d, size_t* bytes)
{
    const auto* area = static_cast<const uint8_t*>(pool.slot(tid)) +
                       rt::logAreaOffset();
    size_t cap = pool.slotBytes() - rt::logAreaOffset();
    size_t pos = 0;
    size_t n = 0;
    *bytes = 0;
    auto seqLo = static_cast<uint32_t>(d.txSeq);
    while (pos + sizeof(rt::LogEntryHeader) <= cap) {
        rt::LogEntryHeader h;
        std::memcpy(&h, area + pos, sizeof(h));
        if (h.len == 0 || h.seqLo != seqLo)
            break;
        size_t need = sizeof(h) + (h.len + 7) / 8 * 8;
        if (pos + need > cap)
            break;
        uint64_t sum = fnv1a(&h.targetOff, sizeof(h.targetOff));
        sum ^= fnv1a(&h.len, sizeof(h.len));
        sum ^= fnv1a(&h.seqLo, sizeof(h.seqLo));
        sum ^= fnv1a(area + pos + sizeof(h), h.len);
        if (sum == 0)
            sum = 1;
        if (sum != h.checksum)
            break;
        n++;
        *bytes += h.len;
        pos += need;
    }
    return n;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <pool-file>\n", argv[0]);
        return 2;
    }
    std::unique_ptr<nvm::Pool> pool;
    try {
        pool = nvm::Pool::open(argv[1]);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    const auto& h = pool->header();
    std::printf("pool %s\n", argv[1]);
    std::printf("  size        %llu MiB\n",
                static_cast<unsigned long long>(h.size >> 20));
    std::printf("  root        offset %llu%s\n",
                static_cast<unsigned long long>(h.rootOff),
                h.rootOff == 0 ? " (unset)" : "");
    std::printf("  aux         offset %llu\n",
                static_cast<unsigned long long>(h.auxOff));
    std::printf("  slots       %u x %llu KiB\n", h.maxThreads,
                static_cast<unsigned long long>(h.slotBytes >> 10));
    std::printf("  heap        offset %llu, %llu MiB\n",
                static_cast<unsigned long long>(h.heapOff),
                static_cast<unsigned long long>(h.heapSize >> 20));

    unsigned interrupted = 0;
    for (unsigned tid = 0; tid < pool->maxThreads(); tid++) {
        const auto& d =
            *static_cast<const rt::TxDescriptor*>(pool->slot(tid));
        bool interesting =
            d.status != static_cast<uint64_t>(rt::TxStatus::idle) ||
            (d.intentCount > 0 && d.intentSeq == d.txSeq);
        if (!interesting && d.txSeq == 0)
            continue;  // slot never used
        size_t logBytes = 0;
        size_t entries = countLogEntries(*pool, tid, d, &logBytes);
        std::printf("slot %-2u %-10s seq=%llu", tid,
                    statusName(d.status),
                    static_cast<unsigned long long>(d.txSeq));
        if (d.status ==
            static_cast<uint64_t>(rt::TxStatus::ongoing)) {
            interrupted++;
            bool valid = beginChecksum(d) == d.beginSum;
            std::printf(" begin=%s fid=0x%08x (%s) args=%uB",
                        valid ? "valid" : "TORN", d.fid,
                        txn::txFuncName(d.fid), d.argLen);
        }
        std::printf(" log: %zu entries / %zu B", entries, logBytes);
        if (d.intentCount > 0 && d.intentSeq == d.txSeq) {
            bool ok = d.intentCount <= rt::kMaxIntents &&
                      intentChecksum(d) == d.intentSum;
            std::printf(" intents: %u (%s)", d.intentCount,
                        ok ? "valid" : "TORN");
        }
        std::printf("\n");
    }

    // Heap statistics (builds the volatile free map; read-only with
    // respect to persistent state).
    alloc::PmAllocator heap(*pool);
    std::printf("heap: %zu free bytes in %zu extents\n",
                heap.freeBytes(), heap.freeExtents());
    std::printf("%u interrupted transaction(s)%s\n", interrupted,
                interrupted > 0 ? " — run recovery before use" : "");
    return 0;
}
