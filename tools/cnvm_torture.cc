/**
 * @file
 * cnvm_torture: crash-point torture harness CLI.
 *
 * Drives the two src/testing tiers over a protocol × structure matrix:
 *
 *   exhaustive   crash insert/update/remove at every persistency-event
 *                index (store/clwb/sfence) until each sweep quiesces;
 *   random       seeded multi-thread fuzz histories crashed at random
 *                event indices with randomized torn-write survival,
 *                with greedy shrinking of any failing case;
 *   media        crash × media-fault sweep: every tear additionally
 *                lands seeded bit flips / poisoned lines / transient
 *                read faults, and the post-recovery audit is strict
 *                unless the RecoveryReport declared salvage aborts.
 *
 * A failing run prints (and optionally writes via --report) the exact
 * reproduction invocation (--replay for fuzz cases, --index for media
 * cases), and exits nonzero — this is what CI uploads on failure.
 *
 * Usage:
 *   cnvm_torture [--protocol NAME|all] [--structure NAME|all]
 *                [--mode exhaustive|random|media|both] [--seed N]
 *                [--budget N] [--threads N] [--tear alllost|random]
 *                [--recovery full|lazy]
 *                [--fault FLIPS:POISONS:TRANSIENTS] [--fault-seed N]
 *                [--fault-regions LIST] [--fault-recovery ROUNDS]
 *                [--index N] [--list-sites] [--report PATH]
 *                [--replay SEED:NOPS:CRASHAT]
 *
 * --budget is a global operation budget divided evenly across the
 * selected matrix (0 = uncapped); the CI smoke tier uses a small
 * budget, the nightly tier runs uncapped. --fault also arms the random
 * mode's tears; --index replays exactly one media case. --recovery
 * lazy routes every post-crash recovery through the instant-restart
 * path (triage + first-touch heals + settle) under the exact same
 * shadow-oracle and allocator audits.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "nvm/fault_model.h"
#include "runtimes/factory.h"
#include "testing/torture.h"

using namespace cnvm;

namespace {

struct Options {
    std::string protocol = "all";
    std::string structure = "all";
    std::string mode = "both";
    uint64_t seed = 1;
    uint64_t budget = 0;
    unsigned threads = 2;
    torture::Tear tear = torture::Tear::randomTear;
    txn::RecoveryMode recovery = txn::RecoveryMode::full;
    torture::FaultSpec faults;  ///< armed by --fault*, or mode media
    uint64_t faultSeed = 0;     ///< 0 = use --seed
    uint64_t index = 0;         ///< media: replay exactly this index
    bool listSites = false;
    std::string reportPath;
    bool haveReplay = false;
    torture::FuzzCase replay;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--protocol NAME|all] [--structure NAME|all]\n"
        "          [--mode exhaustive|random|media|both] [--seed N]\n"
        "          [--budget N] [--threads N] [--tear alllost|random]\n"
        "          [--recovery full|lazy]\n"
        "          [--fault FLIPS:POISONS:TRANSIENTS] [--fault-seed N]\n"
        "          [--fault-regions LIST] [--fault-recovery ROUNDS]\n"
        "          [--index N] [--list-sites] [--report PATH]\n"
        "          [--replay SEED:NOPS:CRASHAT]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char** argv)
{
    Options o;
    auto value = [&](int& i) -> const char* {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--protocol") {
            o.protocol = value(i);
        } else if (a == "--structure") {
            o.structure = value(i);
        } else if (a == "--mode") {
            o.mode = value(i);
            if (o.mode != "exhaustive" && o.mode != "random" &&
                o.mode != "media" && o.mode != "both")
                usage(argv[0]);
        } else if (a == "--fault") {
            unsigned f = 0, p = 0, t = 0;
            if (std::sscanf(value(i), "%u:%u:%u", &f, &p, &t) != 3)
                usage(argv[0]);
            o.faults.enabled = true;
            o.faults.bitFlips = f;
            o.faults.poisons = p;
            o.faults.transients = t;
        } else if (a == "--fault-seed") {
            o.faultSeed = std::strtoull(value(i), nullptr, 0);
        } else if (a == "--fault-regions") {
            o.faults.regionMask = nvm::parseFaultRegions(value(i));
            o.faults.enabled = true;
        } else if (a == "--fault-recovery") {
            o.faults.duringRecoveryRounds =
                static_cast<int>(std::strtol(value(i), nullptr, 0));
        } else if (a == "--index") {
            o.index = std::strtoull(value(i), nullptr, 0);
        } else if (a == "--seed") {
            o.seed = std::strtoull(value(i), nullptr, 0);
        } else if (a == "--budget") {
            o.budget = std::strtoull(value(i), nullptr, 0);
        } else if (a == "--threads") {
            o.threads = static_cast<unsigned>(
                std::strtoul(value(i), nullptr, 0));
        } else if (a == "--tear") {
            std::string t = value(i);
            if (t == "alllost")
                o.tear = torture::Tear::allLost;
            else if (t == "random")
                o.tear = torture::Tear::randomTear;
            else
                usage(argv[0]);
        } else if (a == "--recovery") {
            std::string r = value(i);
            if (r == "full")
                o.recovery = txn::RecoveryMode::full;
            else if (r == "lazy")
                o.recovery = txn::RecoveryMode::lazy;
            else
                usage(argv[0]);
        } else if (a == "--list-sites") {
            o.listSites = true;
        } else if (a == "--report") {
            o.reportPath = value(i);
        } else if (a == "--replay") {
            unsigned long long s = 0, c = 0;
            unsigned n = 0;
            if (std::sscanf(value(i), "%llu:%u:%llu", &s, &n, &c) != 3)
                usage(argv[0]);
            o.haveReplay = true;
            o.replay.seed = s;
            o.replay.nOps = n;
            o.replay.crashAt = c;
        } else {
            usage(argv[0]);
        }
    }
    return o;
}

std::vector<txn::RuntimeKind>
selectProtocols(const std::string& name)
{
    if (name == "all") {
        // The five protocols the sweep must hold for. The nolog
        // baseline is selectable explicitly (and is expected to fail).
        return {txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
                txn::RuntimeKind::redo, txn::RuntimeKind::atlas,
                txn::RuntimeKind::ido};
    }
    return {rt::kindFromName(name)};
}

std::vector<std::string>
selectStructures(const std::string& name)
{
    if (name == "all")
        return {"list", "hashmap", "skiplist", "rbtree", "bptree"};
    return {name};
}

/** Print to stdout and accumulate for --report. */
void
emit(std::string& sink, const std::string& s)
{
    std::fputs(s.c_str(), stdout);
    std::fflush(stdout);
    sink += s;
}

/** Trace the event sites of one insert + one remove (--list-sites). */
void
listSites(txn::RuntimeKind kind, const std::string& structure,
          std::string& sink)
{
    torture::TortureRig rig(kind, structure);
    rig.sched().setTraceEnabled(true);
    rig.kv().insert("site-key", "site-value");
    emit(sink, strprintf("## %s / %s: insert (%llu events)\n",
                         rig.runtime().name(), structure.c_str(),
                         static_cast<unsigned long long>(
                             rig.sched().eventCount())));
    emit(sink, rig.sched().describeTrace());
    rig.sched().clearTrace();
    rig.sched().resetCounts();
    rig.kv().remove("site-key");
    emit(sink, strprintf("## %s: remove (%llu events)\n",
                         structure.c_str(),
                         static_cast<unsigned long long>(
                             rig.sched().eventCount())));
    emit(sink, rig.sched().describeTrace());
}

}  // namespace

int
main(int argc, char** argv)
{
    Options o = parse(argc, argv);
    std::string sink;
    bool failed = false;

    auto protocols = selectProtocols(o.protocol);
    auto structures = selectStructures(o.structure);

    if (o.haveReplay) {
        // Replay one fuzz case bit-for-bit; requires a concrete pair.
        if (protocols.size() != 1 || structures.size() != 1) {
            std::fprintf(stderr, "--replay needs --protocol and "
                                 "--structure\n");
            return 2;
        }
        torture::FuzzConfig fc;
        fc.threads = o.threads;
        fc.tear = o.tear;
        fc.faults = o.faults;
        fc.recovery = o.recovery;
        torture::CaseResult r = torture::runFuzzCase(
            protocols[0], structures[0], o.replay, fc);
        emit(sink, strprintf(
                       "replay seed=%llu nOps=%u crashAt=%llu: %s\n"
                       "  events=%llu crashed=%d ops=%llu\n%s",
                       static_cast<unsigned long long>(o.replay.seed),
                       o.replay.nOps,
                       static_cast<unsigned long long>(
                           o.replay.crashAt),
                       r.failure.empty() ? "PASS" : "FAIL",
                       static_cast<unsigned long long>(r.events),
                       r.crashed ? 1 : 0,
                       static_cast<unsigned long long>(r.opsExecuted),
                       r.failure.empty()
                           ? ""
                           : ("  " + r.failure + "\n").c_str()));
        failed = !r.failure.empty();
    } else if (o.listSites) {
        for (txn::RuntimeKind kind : protocols)
            for (const std::string& s : structures)
                listSites(kind, s, sink);
    } else {
        size_t combos = protocols.size() * structures.size();
        bool doMedia = o.mode == "media";
        bool doSweep = !doMedia && o.mode != "random";
        bool doFuzz = !doMedia && o.mode != "exhaustive";
        size_t shares = combos * ((doSweep ? 1 : 0) +
                                  (doFuzz ? 1 : 0) +
                                  (doMedia ? 1 : 0));
        uint64_t perShare =
            o.budget == 0 ? 0
                          : std::max<uint64_t>(o.budget / shares, 50);
        for (txn::RuntimeKind kind : protocols) {
            for (const std::string& s : structures) {
                if (doMedia) {
                    torture::MediaSweepConfig cfg;
                    cfg.tear = o.tear;
                    cfg.seed = o.faultSeed != 0 ? o.faultSeed : o.seed;
                    cfg.faults = o.faults;
                    cfg.faults.enabled = true;
                    cfg.recovery = o.recovery;
                    cfg.budget = perShare;
                    if (o.index != 0) {
                        // Cases are independent (fresh rig per index),
                        // so one index replays exactly.
                        cfg.startIndex = o.index;
                        cfg.budget = 1;
                    }
                    torture::MediaSweepResult r =
                        torture::mediaFaultSweep(kind, s, cfg);
                    emit(sink, r.summary(kind, s) + "\n");
                    failed = failed || !r.passed;
                }
                if (doSweep) {
                    torture::SweepConfig cfg;
                    cfg.tear = o.tear;
                    cfg.seed = o.seed;
                    cfg.budget = perShare;
                    cfg.recovery = o.recovery;
                    torture::SweepResult r =
                        torture::exhaustiveSweep(kind, s, cfg);
                    emit(sink, r.summary(kind, s) + "\n");
                    failed = failed || !r.passed;
                }
                if (doFuzz) {
                    torture::FuzzConfig fc;
                    fc.threads = o.threads;
                    fc.tear = o.tear;
                    fc.faults = o.faults;
                    fc.baseSeed = o.seed;
                    fc.recovery = o.recovery;
                    if (perShare != 0)
                        fc.budget = perShare;
                    torture::FuzzOutcome r =
                        torture::fuzz(kind, s, fc);
                    emit(sink, r.report(kind, s));
                    failed = failed || !r.passed;
                }
            }
        }
    }

    emit(sink, failed ? "RESULT: FAIL\n" : "RESULT: PASS\n");
    if (!o.reportPath.empty()) {
        std::FILE* f = std::fopen(o.reportPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.reportPath.c_str());
            return 2;
        }
        std::fwrite(sink.data(), 1, sink.size(), f);
        std::fclose(f);
    }
    return failed ? 1 : 0;
}
