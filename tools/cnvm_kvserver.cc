/**
 * @file
 * Network-facing persistent KV server (memcached text protocol).
 *
 * Thread-per-core serving stack over a file-backed pool: an accept
 * thread feeds per-connection threads, which route requests to shard-
 * owning workers (server/kv_service.h) that group-commit runs of
 * mutations. On startup the pool is created if missing, otherwise
 * opened and *recovered* — the tool prints a RECOVERY line describing
 * what recovery did, then READY with the bound port. Kill it with
 * SIGKILL mid-traffic and start it again: acked data must all be
 * there (scripts/torture_kvserver.sh automates exactly that).
 *
 *   cnvm_kvserver --pool /tmp/kv.pool --protocol clobber \
 *                 --workers 4 --batch 8 --port 0 --port-file /tmp/kv.port
 *
 * Knobs: --protocol clobber|pmdk|mnemosyne|atlas|nolog|ido,
 * --workers N (engine slots slotBase..slotBase+N-1), --batch N (max
 * mutations fused per transaction; 0 → $CNVM_BATCH, default 8),
 * --shards N, --lock rw|spin, --port 0 → ephemeral (published via
 * --port-file, atomically). CNVM_POOL_MB sizes a fresh pool.
 *
 * --recovery full|lazy (default: $CNVM_RECOVERY, else full) picks the
 * restart mode. Lazy runs the bounded triage pass and starts serving
 * immediately — the heap rebuild proceeds incrementally and pending
 * slots heal on first touch or from the background salvage thread.
 * The tool prints RECOVERY with the mode and triage time, READY with
 * time-to-first-request (startup to listening), HEALING progress
 * lines while the background drain runs, and HEALED when recovery is
 * fully settled. `stats` exposes recovery_pending / recovery_healed.
 */
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include "alloc/pm_allocator.h"
#include "apps/kv/kv_server.h"
#include "nvm/pool.h"
#include "runtimes/factory.h"
#include "server/kv_service.h"
#include "server/tcp_server.h"

using namespace cnvm;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

bool
fileExists(const std::string& path)
{
    struct ::stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

size_t
envSize(const char* name, size_t dflt)
{
    const char* v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : dflt;
}

struct Options {
    std::string pool = "/tmp/cnvm_kv.pool";
    std::string protocol = "clobber";
    std::string portFile;
    std::string lock = "rw";
    std::string recovery;  ///< "", "full" or "lazy" ("" → env)
    unsigned port = 0;
    unsigned workers = 2;
    unsigned batch = 0;
    unsigned shards = 64;
};

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--pool PATH] [--protocol NAME] [--port N]\n"
        "          [--port-file PATH] [--workers N] [--batch N]\n"
        "          [--shards N] [--lock rw|spin]\n"
        "          [--recovery full|lazy]\n",
        argv0);
    std::exit(2);
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--pool")
            opt.pool = val();
        else if (a == "--protocol")
            opt.protocol = val();
        else if (a == "--port")
            opt.port = std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--port-file")
            opt.portFile = val();
        else if (a == "--workers")
            opt.workers = std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--batch")
            opt.batch = std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--shards")
            opt.shards = std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--lock")
            opt.lock = val();
        else if (a == "--recovery")
            opt.recovery = val();
        else
            usage(argv[0]);
    }

    txn::RecoveryMode recMode = txn::recoveryModeFromEnv();
    if (opt.recovery == "full")
        recMode = txn::RecoveryMode::full;
    else if (opt.recovery == "lazy")
        recMode = txn::RecoveryMode::lazy;
    else if (!opt.recovery.empty()) {
        std::fprintf(stderr, "bad --recovery (want full|lazy)\n");
        return 2;
    }

    txn::RuntimeKind kind;
    try {
        kind = rt::kindFromName(opt.protocol);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bad --protocol: %s\n", e.what());
        return 2;
    }

    auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<nvm::Pool> pool;
    bool fresh = !fileExists(opt.pool);
    if (fresh) {
        nvm::PoolConfig cfg;
        cfg.path = opt.pool;
        cfg.size = envSize("CNVM_POOL_MB", 256) << 20;
        cfg.maxThreads = std::max(8u, opt.workers + 2);
        cfg.slotBytes = 256ULL << 10;
        pool = nvm::Pool::create(cfg);
    } else {
        try {
            pool = nvm::Pool::open(opt.pool);
        } catch (const nvm::PoolOpenError& e) {
            std::fprintf(stderr, "cannot open pool %s: %s\n",
                         opt.pool.c_str(), e.what());
            return 1;
        }
    }
    nvm::Pool::setCurrent(pool.get());

    // Under lazy restart the allocator must not pay the full bitmap
    // scan in its constructor — recovery arms the incremental rebuild.
    bool lazy = recMode == txn::RecoveryMode::lazy && !fresh;
    alloc::PmAllocator heap(*pool, /* deferRebuild */ lazy);
    auto runtime = rt::makeRuntime(kind, *pool, heap);
    txn::Engine eng(*runtime);

    if (!fresh) {
        auto report = eng.recover(recMode, /* backgroundHealer */ true);
        std::printf("RECOVERY mode=%s pending=%llu took_ms=%.2f "
                    "applied=%llu dropped=%llu salvage=%llu clean=%d\n",
                    txn::recoveryModeName(recMode),
                    static_cast<unsigned long long>(
                        eng.recoveryPending()),
                    msSince(t0),
                    static_cast<unsigned long long>(
                        report.logEntriesApplied),
                    static_cast<unsigned long long>(
                        report.logEntriesDropped),
                    static_cast<unsigned long long>(
                        report.salvageAborted),
                    report.clean() ? 1 : 0);
        if (!report.clean())
            std::fputs(report.toString().c_str(), stdout);
    } else {
        std::printf("RECOVERY fresh pool, nothing to do\n");
    }

    apps::KvServer::Config kvCfg;
    kvCfg.shards = opt.shards;
    kvCfg.lockMode = opt.lock == "spin"
                         ? apps::KvServer::LockMode::spin
                         : apps::KvServer::LockMode::rw;
    apps::KvServer kv(eng, pool->root(), kvCfg);
    if (fresh)
        pool->setRoot(kv.rootOff());

    server::ServiceConfig svcCfg;
    svcCfg.workers = opt.workers;
    svcCfg.batchMax = opt.batch;
    server::KvService svc(kv, svcCfg);
    try {
        svc.start();
    } catch (const txn::SlotRangeError& e) {
        std::fprintf(stderr, "cannot start service: %s\n", e.what());
        return 2;
    }

    server::TcpConfig tcpCfg;
    tcpCfg.port = static_cast<uint16_t>(opt.port);
    server::TcpServer tcp(svc, kv, tcpCfg);
    tcp.start();

    std::printf("READY port=%u pid=%d workers=%u batch=%u "
                "protocol=%s ttfr_ms=%.2f\n",
                unsigned(tcp.port()), int(::getpid()), opt.workers,
                svc.batchMax(), opt.protocol.c_str(), msSince(t0));
    std::fflush(stdout);

    if (!opt.portFile.empty()) {
        std::string tmp = opt.portFile + ".tmp";
        if (FILE* f = std::fopen(tmp.c_str(), "w")) {
            std::fprintf(f, "%u %d\n", unsigned(tcp.port()),
                         int(::getpid()));
            std::fclose(f);
            ::rename(tmp.c_str(), opt.portFile.c_str());
        }
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    bool healReported = !eng.recoveryActive();
    uint64_t lastHealed = ~0ULL;
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (healReported)
            continue;
        uint64_t healed = eng.recoveryHealed();
        uint64_t pending = eng.recoveryPending();
        if (pending == 0) {
            std::printf("HEALED items=%llu took_ms=%.2f\n",
                        static_cast<unsigned long long>(healed),
                        msSince(t0));
            std::fflush(stdout);
            healReported = true;
        } else if (healed != lastHealed) {
            std::printf("HEALING healed=%llu pending=%llu\n",
                        static_cast<unsigned long long>(healed),
                        static_cast<unsigned long long>(pending));
            std::fflush(stdout);
            lastHealed = healed;
        }
        if (eng.recoveryHealerDied()) {
            // The background healer hit an exception; finish the job
            // inline rather than serving with pending heals forever.
            std::printf("HEALER-DIED draining inline\n");
            std::fflush(stdout);
            eng.drainRecovery();
        }
    }

    tcp.stop();
    svc.stop();
    // Workers are joined: safe to settle any still-lazy recovery so a
    // graceful shutdown always leaves a fully healed pool behind.
    eng.finishRecovery();
    auto t = svc.totalStats();
    std::printf("STOPPED ops=%llu batches=%llu batched=%llu "
                "singles=%llu overflows=%llu\n",
                static_cast<unsigned long long>(t.ops),
                static_cast<unsigned long long>(t.batches),
                static_cast<unsigned long long>(t.batchedOps),
                static_cast<unsigned long long>(t.singles),
                static_cast<unsigned long long>(t.overflows));
    return 0;
}
