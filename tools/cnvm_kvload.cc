/**
 * @file
 * Load generator + crash-consistency checker for cnvm_kvserver.
 *
 * Load mode drives mixed memcached-protocol traffic over N pipelined
 * connections (server/loadgen.h) and reports throughput and window
 * round-trip percentiles. With --shadow PATH each connection journals
 * every mutation (pending before send, acked on reply), which a later
 * --verify run replays against the restarted server: every acked
 * write must be present, in-flight writes may have landed either way.
 *
 *   cnvm_kvload --port-file /tmp/kv.port --ops 100000 --conns 4 \
 *               --write 0.95 --shadow /tmp/kv.shadow --expect-kill
 *   cnvm_kvload --port-file /tmp/kv.port --verify /tmp/kv.shadow \
 *               --conns 4
 *
 * Exit status: 0 ok, 1 server died unexpectedly (without
 * --expect-kill), 2 integrity violations in --verify.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/loadgen.h"

using namespace cnvm;

namespace {

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--port N | --port-file PATH) [--ops N]\n"
        "          [--conns N] [--window N] [--keys N] [--vallen N]\n"
        "          [--write RATIO] [--seed N] [--max-seconds S]\n"
        "          [--shadow PATH] [--expect-kill]\n"
        "          [--verify PATH]\n",
        argv0);
    std::exit(2);
}

unsigned
readPortFile(const std::string& path)
{
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot read port file %s\n",
                     path.c_str());
        std::exit(2);
    }
    unsigned port = 0;
    if (std::fscanf(f, "%u", &port) != 1)
        port = 0;
    std::fclose(f);
    if (port == 0) {
        std::fprintf(stderr, "bad port file %s\n", path.c_str());
        std::exit(2);
    }
    return port;
}

}  // namespace

int
main(int argc, char** argv)
{
    server::LoadConfig cfg;
    std::string verifyPath;
    bool expectKill = false;

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto val = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (a == "--port")
            cfg.port = static_cast<uint16_t>(
                std::strtoul(val().c_str(), nullptr, 10));
        else if (a == "--port-file")
            cfg.port = static_cast<uint16_t>(readPortFile(val()));
        else if (a == "--ops")
            cfg.totalOps = std::strtoull(val().c_str(), nullptr, 10);
        else if (a == "--conns")
            cfg.connections =
                std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--window")
            cfg.window = std::strtoul(val().c_str(), nullptr, 10);
        else if (a == "--keys")
            cfg.keySpace = std::strtoull(val().c_str(), nullptr, 10);
        else if (a == "--vallen")
            cfg.valueLen = std::strtoull(val().c_str(), nullptr, 10);
        else if (a == "--write")
            cfg.writeRatio = std::strtod(val().c_str(), nullptr);
        else if (a == "--seed")
            cfg.seed = std::strtoull(val().c_str(), nullptr, 10);
        else if (a == "--max-seconds")
            cfg.maxSeconds = std::strtod(val().c_str(), nullptr);
        else if (a == "--shadow")
            cfg.shadowPath = val();
        else if (a == "--verify")
            verifyPath = val();
        else if (a == "--expect-kill")
            expectKill = true;
        else
            usage(argv[0]);
    }
    if (cfg.port == 0)
        usage(argv[0]);

    if (!verifyPath.empty()) {
        auto res = server::verifyShadow(verifyPath, cfg.connections,
                                        cfg.port);
        std::printf("VERIFY keys=%llu violations=%llu\n",
                    static_cast<unsigned long long>(res.keysChecked),
                    static_cast<unsigned long long>(res.violations));
        for (const auto& ex : res.examples)
            std::printf("  VIOLATION %s\n", ex.c_str());
        return res.violations == 0 ? 0 : 2;
    }

    auto res = server::runLoad(cfg);
    std::printf("LOAD acked=%llu errors=%llu secs=%.3f ops_per_sec=%.0f "
                "p50us=%.1f p95us=%.1f p99us=%.1f died=%d\n",
                static_cast<unsigned long long>(res.opsAcked),
                static_cast<unsigned long long>(res.errors),
                res.seconds, res.opsPerSec, res.p50us, res.p95us,
                res.p99us, res.serverDied ? 1 : 0);
    if (res.serverDied && !expectKill)
        return 1;
    return 0;
}
