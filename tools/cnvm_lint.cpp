/**
 * @file
 * cnvm_lint: the persistency + re-execution-safety checker CLI.
 *
 * Modes (default `all`):
 *
 *  persist — the intraprocedural pipeline: every seeded-violation
 *      fixture (missing flush, missing fence, unlogged clobber,
 *      double flush) must be flagged with its expected finding and
 *      the clean fixture must report nothing; then every registered
 *      benchmark CIR function is run through the clobber pass,
 *      instrumented, and must check clean.
 *  reexec — the interprocedural pipeline: every seeded reexec
 *      fixture (nondeterministic call, I/O in tx, escaping volatile
 *      store, callee-hidden clobber) must be flagged; then the whole
 *      corpus (benchmark modules + the runtime tx module) is checked
 *      with call summaries: summary-aware persistency audit plus the
 *      re-execution-safety verifier, zero errors required.
 *  dynamic — each of the six runtimes executes a short mixed
 *      workload (including a crashAllLost + recovery round trip)
 *      with the DurabilityValidator attached; no commit may leave a
 *      dirty line.
 *  all — everything above.
 *
 * Flags: -v (verbose), --json (machine-readable findings; persist
 * and reexec modes only), --werror (warning findings also fail),
 * --list (enumerate registered fixtures + corpus functions, exit 0).
 *
 * Exit codes: 0 clean, 1 findings (or self-check/validator failure),
 * 2 usage error.
 *
 * Usage: cnvm_lint [persist|reexec|dynamic|all] [-v] [--json]
 *                  [--werror] [--list]
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/pm_allocator.h"
#include "analysis/durability.h"
#include "analysis/fixtures.h"
#include "analysis/persist_check.h"
#include "analysis/reexec_check.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"
#include "cir/summaries.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "runtimes/factory.h"
#include "txn/txrun.h"

using namespace cnvm;

namespace {

bool verbose = false;
int selfCheckFailures = 0;
int errorFindings = 0;
int warningFindings = 0;

/** Findings accumulator for --json (null when emitting text). */
std::string* jsonOut = nullptr;
bool jsonFirst = true;

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** Record one function's report: JSON object or verbose text. */
void
emitReport(const std::string& module, const cir::Function& f,
           const analysis::PersistReport& rep, bool bad)
{
    errorFindings += rep.count(analysis::Severity::error);
    warningFindings += rep.count(analysis::Severity::warning);
    if (jsonOut) {
        std::string& o = *jsonOut;
        if (!jsonFirst)
            o += ",";
        jsonFirst = false;
        o += "\n    {\"module\": \"" + jsonEscape(module) +
             "\", \"function\": \"" + jsonEscape(f.name()) +
             "\", \"findings\": [";
        bool first = true;
        for (const auto& v : rep.violations) {
            if (!first)
                o += ", ";
            first = false;
            o += "\n      {\"kind\": \"";
            o += analysis::checkKindName(v.kind);
            o += "\", \"severity\": \"";
            o += analysis::severityName(v.severity);
            o += "\", \"block\": " + std::to_string(v.at.block) +
                 ", \"instr\": " + std::to_string(v.at.index);
            std::string callee =
                !v.callee.empty() ? v.callee
                                  : f.at(v.at).op == cir::Op::call
                                        ? f.at(v.at).callee
                                        : "";
            if (!callee.empty())
                o += ", \"callee\": \"" + jsonEscape(callee) + "\"";
            o += ", \"detail\": \"" + jsonEscape(v.detail) + "\"";
            if (!v.hint.empty())
                o += ", \"hint\": \"" + jsonEscape(v.hint) + "\"";
            o += "}";
        }
        o += first ? "]}" : "\n    ]}";
    } else if (bad || verbose) {
        std::printf("%s/%s", module.c_str(),
                    rep.toString(f).c_str());
    }
}

/** Minimal persistent root for the dynamic workload. */
struct LintRoot {
    uint64_t counter;
    uint64_t sum;
    nvm::PPtr<struct LintNode> head;
};

struct LintNode {
    uint64_t value;
    nvm::PPtr<LintNode> next;
};

void
incrFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    tx.st(root->counter, tx.ld(root->counter) + 1);
}

void
pushFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    auto value = a.get<uint64_t>();
    auto node = tx.pnew<LintNode>();
    tx.st(node->value, value);
    tx.st(node->next, tx.ld(root->head));
    tx.st(root->head, node);
    tx.st(root->sum, tx.ld(root->sum) + value);
}

void
popFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    auto head = tx.ld(root->head);
    if (head.isNull())
        return;
    uint64_t value = tx.ld(head->value);
    tx.st(root->head, tx.ld(head->next));
    tx.st(root->sum, tx.ld(root->sum) - value);
    tx.pfree(head);
}

const txn::FuncId kLintIncr = txn::registerTxFunc("lint_incr", incrFn);
const txn::FuncId kLintPush = txn::registerTxFunc("lint_push", pushFn);
const txn::FuncId kLintPop = txn::registerTxFunc("lint_pop", popFn);
const txn::FuncId kLintMakeRoot = txn::registerTxFunc(
    "lint_make_root", [](txn::Tx& tx, txn::ArgReader&) {
        auto r = tx.pnew<LintRoot>();
        tx.pool().setRoot(r.raw());
    });

bool
runFixtureSelfCheck()
{
    bool ok = true;
    for (const auto& [fn, expected] :
         analysis::seededViolationFixtures()) {
        auto rep = analysis::checkPersistency(fn);
        if (!rep.has(expected)) {
            std::printf("FAIL %s: seeded %s not flagged\n",
                        fn.name().c_str(),
                        analysis::checkKindName(expected));
            ok = false;
        } else if (verbose && !jsonOut) {
            std::printf("%s", rep.toString(fn).c_str());
        }
    }
    cir::Function clean = analysis::buildCleanFixture();
    auto rep = analysis::checkPersistency(clean);
    if (!rep.violations.empty()) {
        std::printf("FAIL %s: false positive on clean fixture\n%s",
                    clean.name().c_str(),
                    rep.toString(clean).c_str());
        ok = false;
    }
    if (!jsonOut)
        std::printf("fixture self-check: %s\n",
                    ok ? "ok" : "FAILED");
    if (!ok)
        selfCheckFailures++;
    return ok;
}

bool
runStaticLint()
{
    bool ok = true;
    size_t functions = 0;
    for (const auto& mod : cir::benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            functions++;
            cir::ClobberResult res = cir::analyzeClobbers(fn);
            cir::Function inst =
                analysis::instrumentPersistency(fn, res);
            auto rep = analysis::checkPersistency(inst);
            bool bad = !rep.clean() ||
                       rep.count(analysis::Severity::warning) > 0;
            emitReport(mod.name, inst, rep, bad);
            ok = ok && !bad;
        }
    }
    if (!jsonOut)
        std::printf("static lint: %zu functions, %s\n", functions,
                    ok ? "ok" : "FAILED");
    return ok;
}

/** Each seeded reexec module must yield its expected finding; the
    clean module must be silent under both interprocedural audits. */
bool
runReexecSelfCheck()
{
    bool ok = true;
    for (const auto& fix : analysis::seededReexecFixtures()) {
        cir::ModuleSummaries sums(fix.mod.functions);
        const cir::Function* tx = nullptr;
        for (const auto& fn : fix.mod.functions)
            if (fn.name() == fix.txFunction)
                tx = &fn;
        if (!tx) {
            std::printf("FAIL %s: tx function '%s' missing\n",
                        fix.mod.name.c_str(),
                        fix.txFunction.c_str());
            ok = false;
            continue;
        }
        auto rep = analysis::checkReexecSafety(*tx, sums);
        if (!rep.has(fix.expected)) {
            std::printf("FAIL %s: seeded %s not flagged\n",
                        tx->name().c_str(),
                        analysis::checkKindName(fix.expected));
            ok = false;
        } else if (verbose && !jsonOut) {
            std::printf("%s", rep.toString(*tx).c_str());
        }
    }
    cir::IrModule clean = analysis::buildReexecCleanModule();
    cir::ModuleSummaries sums(clean.functions);
    for (const auto& fn : clean.functions) {
        auto rep = analysis::checkReexecSafety(fn, sums);
        auto prep = analysis::checkPersistency(fn, &sums);
        if (!rep.violations.empty() || !prep.clean()) {
            std::printf(
                "FAIL %s: false positive on clean module\n%s%s",
                fn.name().c_str(), rep.toString(fn).c_str(),
                prep.toString(fn).c_str());
            ok = false;
        }
    }
    if (!jsonOut)
        std::printf("reexec self-check: %s\n", ok ? "ok" : "FAILED");
    if (!ok)
        selfCheckFailures++;
    return ok;
}

/** Interprocedural corpus gate: benchmark modules (instrumented, as
    the compiler would emit them) and the pre-instrumented runtime tx
    module must carry zero error findings under the summary-aware
    persistency audit and the reexec verifier. */
bool
runReexecLint()
{
    bool ok = true;
    size_t functions = 0;

    auto modules = cir::benchmarkModules();
    for (auto& mod : modules) {
        cir::ModuleSummaries sums(mod.functions);
        for (const auto& fn : mod.functions) {
            functions++;
            cir::ClobberResult res = cir::analyzeClobbers(fn, sums);
            cir::Function inst =
                analysis::instrumentPersistency(fn, res);
            auto rep = analysis::checkPersistency(inst, &sums);
            auto rrep = analysis::checkReexecSafety(inst, sums);
            rep.violations.insert(rep.violations.end(),
                                  rrep.violations.begin(),
                                  rrep.violations.end());
            rep.callsChecked += rrep.callsChecked;
            bool bad = !rep.clean() ||
                       rep.count(analysis::Severity::warning) > 0;
            emitReport(mod.name, inst, rep, bad);
            ok = ok && !bad;
        }
    }

    // The runtime tx corpus ships instrumented; check it as-is.
    cir::IrModule rt = cir::runtimeTxModule();
    cir::ModuleSummaries sums(rt.functions);
    for (const auto& fn : rt.functions) {
        functions++;
        auto rep = analysis::checkPersistency(fn, &sums);
        auto rrep = analysis::checkReexecSafety(fn, sums);
        rep.violations.insert(rep.violations.end(),
                              rrep.violations.begin(),
                              rrep.violations.end());
        rep.callsChecked += rrep.callsChecked;
        bool bad = !rep.clean() ||
                   rep.count(analysis::Severity::warning) > 0;
        emitReport(rt.name, fn, rep, bad);
        ok = ok && !bad;
    }

    if (!jsonOut)
        std::printf("reexec lint: %zu functions, %s\n", functions,
                    ok ? "ok" : "FAILED");
    return ok;
}

bool
runDynamicValidation(txn::RuntimeKind kind, const char* name)
{
    nvm::PoolConfig cfg;
    cfg.size = 32ULL << 20;
    cfg.maxThreads = 8;
    cfg.slotBytes = 128ULL << 10;
    auto pool = nvm::Pool::create(cfg);
    nvm::Pool::setCurrent(pool.get());
    alloc::PmAllocator heap(*pool);
    auto rt = rt::makeRuntime(kind, *pool, heap);

    // Bootstrap the root before attaching so setup writes are not
    // part of the audit (they are persisted by the bootstrap commit).
    txn::Engine boot(*rt);
    txn::run(boot, kLintMakeRoot);

    analysis::DurabilityValidator::Options opt;
    opt.requireDurability = kind != txn::RuntimeKind::noLog;
    analysis::DurabilityValidator validator(pool->cache(), opt);
    txn::Engine eng(*rt, &validator);
    uint64_t rootOff = pool->root();

    for (uint64_t v = 1; v <= 20; v++)
        txn::run(eng, kLintPush, rootOff, v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kLintIncr, rootOff);
    for (int i = 0; i < 5; i++)
        txn::run(eng, kLintPop, rootOff);

    // Power-loss round trip: recovery must restart the audit from a
    // consistent image and stay clean afterwards.
    pool->cache().crashAllLost();
    rt->recover();
    for (uint64_t v = 1; v <= 10; v++)
        txn::run(eng, kLintPush, rootOff, 100 + v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kLintPop, rootOff);

    bool ok = validator.violations().empty();
    std::printf("dynamic %-10s %s (%s)\n", name,
                ok ? "ok" : "FAILED", validator.summary().c_str());
    if (!ok) {
        for (const auto& v : validator.violations()) {
            std::printf("  commit #%llu tid=%u: %zu dirty, %zu "
                        "pending line(s)\n",
                        static_cast<unsigned long long>(v.commitIndex),
                        v.tid, v.dirtyLines, v.pendingLines);
        }
    }
    nvm::Pool::setCurrent(nullptr);
    return ok;
}

/** The validator itself must catch a planted dynamic violation. */
bool
runDynamicSelfCheck()
{
    nvm::PoolConfig cfg;
    cfg.size = 8ULL << 20;
    cfg.maxThreads = 2;
    cfg.slotBytes = 64ULL << 10;
    auto pool = nvm::Pool::create(cfg);
    analysis::DurabilityValidator validator(pool->cache());
    // A raw store that bypasses any runtime: dirty, never flushed.
    uint64_t junk = 0xDEAD;
    pool->writeAt(pool->heapOff(), &junk, sizeof(junk));
    validator.afterCommit(0);
    bool ok = validator.violations().size() == 1 &&
              validator.violations()[0].dirtyLines == 1;
    std::printf("dynamic self-check: %s\n", ok ? "ok" : "FAILED");
    if (!ok)
        selfCheckFailures++;
    return ok;
}

bool
runDynamic()
{
    bool ok = runDynamicSelfCheck();
    static const std::pair<txn::RuntimeKind, const char*> kKinds[] = {
        {txn::RuntimeKind::noLog, "nolog"},
        {txn::RuntimeKind::undo, "pmdk"},
        {txn::RuntimeKind::redo, "mnemosyne"},
        {txn::RuntimeKind::clobber, "clobber"},
        {txn::RuntimeKind::atlas, "atlas"},
        {txn::RuntimeKind::ido, "ido"},
    };
    for (const auto& [kind, name] : kKinds)
        ok = runDynamicValidation(kind, name) && ok;
    return ok;
}

void
printList()
{
    std::printf("persist fixtures:\n");
    for (const auto& [fn, expected] :
         analysis::seededViolationFixtures())
        std::printf("  %-28s expects %s\n", fn.name().c_str(),
                    analysis::checkKindName(expected));
    std::printf("  %-28s expects (clean)\n",
                analysis::buildCleanFixture().name().c_str());
    std::printf("reexec fixtures:\n");
    for (const auto& fix : analysis::seededReexecFixtures())
        std::printf("  %s/%-28s expects %s\n", fix.mod.name.c_str(),
                    fix.txFunction.c_str(),
                    analysis::checkKindName(fix.expected));
    cir::IrModule clean = analysis::buildReexecCleanModule();
    for (const auto& fn : clean.functions)
        std::printf("  %s/%-28s expects (clean)\n",
                    clean.name.c_str(), fn.name().c_str());
    std::printf("corpus:\n");
    for (const auto& mod : cir::benchmarkModules())
        for (const auto& fn : mod.functions)
            std::printf("  %s/%s\n", mod.name.c_str(),
                        fn.name().c_str());
    cir::IrModule rt = cir::runtimeTxModule();
    for (const auto& fn : rt.functions)
        std::printf("  %s/%s\n", rt.name.c_str(),
                    fn.name().c_str());
}

int
usage(const char* prog)
{
    std::fprintf(stderr,
                 "usage: %s [persist|reexec|dynamic|all] [-v] "
                 "[--json] [--werror] [--list]\n",
                 prog);
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string mode = "all";
    bool modeSet = false;
    bool json = false, werror = false, list = false;
    for (int i = 1; i < argc; i++) {
        const char* a = argv[i];
        if (std::strcmp(a, "-v") == 0) {
            verbose = true;
        } else if (std::strcmp(a, "--json") == 0) {
            json = true;
        } else if (std::strcmp(a, "--werror") == 0) {
            werror = true;
        } else if (std::strcmp(a, "--list") == 0) {
            list = true;
        } else if (std::strcmp(a, "persist") == 0 ||
                   std::strcmp(a, "reexec") == 0 ||
                   std::strcmp(a, "dynamic") == 0 ||
                   std::strcmp(a, "all") == 0) {
            if (modeSet)
                return usage(argv[0]);
            mode = a;
            modeSet = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (list) {
        printList();
        return 0;
    }
    // JSON output covers the static pipelines only.
    if (json && mode != "persist" && mode != "reexec")
        return usage(argv[0]);

    std::string findings;
    if (json)
        jsonOut = &findings;

    bool ok = true;
    if (mode == "persist" || mode == "all") {
        ok = runFixtureSelfCheck() && ok;
        ok = runStaticLint() && ok;
    }
    if (mode == "reexec" || mode == "all") {
        ok = runReexecSelfCheck() && ok;
        ok = runReexecLint() && ok;
    }
    if (mode == "dynamic" || mode == "all")
        ok = runDynamic() && ok;

    bool fail = !ok || errorFindings > 0 ||
                (werror && warningFindings > 0) ||
                selfCheckFailures > 0;
    if (json) {
        std::printf("{\n  \"mode\": \"%s\",\n  \"functions\": [%s"
                    "\n  ],\n  \"errors\": %d,\n  \"warnings\": %d,"
                    "\n  \"selfCheckFailures\": %d,\n  \"status\": "
                    "\"%s\"\n}\n",
                    mode.c_str(), findings.c_str(), errorFindings,
                    warningFindings, selfCheckFailures,
                    fail ? "FAIL" : "PASS");
    } else {
        std::printf("cnvm_lint: %s\n", fail ? "FAIL" : "PASS");
    }
    return fail ? 1 : 0;
}
