/**
 * @file
 * cnvm_lint: the persistency checker CLI.
 *
 * Three phases, any failure exits non-zero:
 *
 *  1. Detection self-check — every seeded-violation fixture
 *     (missing flush, missing fence, unlogged clobber, double flush)
 *     must be flagged with its expected finding; the clean fixture
 *     must report nothing. A lint that cannot catch planted bugs
 *     proves nothing about real ones.
 *  2. Static lint — every registered benchmark CIR function is run
 *     through the clobber pass, instrumented (clobber_log + flush +
 *     commit fence, as the compiler would emit), and the result must
 *     check clean: zero errors, zero warnings.
 *  3. Dynamic validation — each of the six runtimes executes a short
 *     mixed workload (including a crashAllLost + recovery round trip)
 *     with the DurabilityValidator attached; no commit may leave a
 *     dirty line. The no-log baseline claims no durability and is
 *     audited with that contract.
 *
 * Usage: cnvm_lint [-v]
 */
#include <cstdio>
#include <cstring>

#include "alloc/pm_allocator.h"
#include "analysis/durability.h"
#include "analysis/fixtures.h"
#include "analysis/persist_check.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"
#include "nvm/pool.h"
#include "nvm/pptr.h"
#include "runtimes/factory.h"
#include "txn/txrun.h"

using namespace cnvm;

namespace {

bool verbose = false;

/** Minimal persistent root for the dynamic workload. */
struct LintRoot {
    uint64_t counter;
    uint64_t sum;
    nvm::PPtr<struct LintNode> head;
};

struct LintNode {
    uint64_t value;
    nvm::PPtr<LintNode> next;
};

void
incrFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    tx.st(root->counter, tx.ld(root->counter) + 1);
}

void
pushFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    auto value = a.get<uint64_t>();
    auto node = tx.pnew<LintNode>();
    tx.st(node->value, value);
    tx.st(node->next, tx.ld(root->head));
    tx.st(root->head, node);
    tx.st(root->sum, tx.ld(root->sum) + value);
}

void
popFn(txn::Tx& tx, txn::ArgReader& a)
{
    auto root = nvm::PPtr<LintRoot>(a.get<uint64_t>());
    auto head = tx.ld(root->head);
    if (head.isNull())
        return;
    uint64_t value = tx.ld(head->value);
    tx.st(root->head, tx.ld(head->next));
    tx.st(root->sum, tx.ld(root->sum) - value);
    tx.pfree(head);
}

const txn::FuncId kLintIncr = txn::registerTxFunc("lint_incr", incrFn);
const txn::FuncId kLintPush = txn::registerTxFunc("lint_push", pushFn);
const txn::FuncId kLintPop = txn::registerTxFunc("lint_pop", popFn);
const txn::FuncId kLintMakeRoot = txn::registerTxFunc(
    "lint_make_root", [](txn::Tx& tx, txn::ArgReader&) {
        auto r = tx.pnew<LintRoot>();
        tx.pool().setRoot(r.raw());
    });

bool
runFixtureSelfCheck()
{
    bool ok = true;
    for (const auto& [fn, expected] :
         analysis::seededViolationFixtures()) {
        auto rep = analysis::checkPersistency(fn);
        if (!rep.has(expected)) {
            std::printf("FAIL %s: seeded %s not flagged\n",
                        fn.name().c_str(),
                        analysis::checkKindName(expected));
            ok = false;
        } else if (verbose) {
            std::printf("%s", rep.toString(fn).c_str());
        }
    }
    cir::Function clean = analysis::buildCleanFixture();
    auto rep = analysis::checkPersistency(clean);
    if (!rep.violations.empty()) {
        std::printf("FAIL %s: false positive on clean fixture\n%s",
                    clean.name().c_str(),
                    rep.toString(clean).c_str());
        ok = false;
    }
    std::printf("fixture self-check: %s\n", ok ? "ok" : "FAILED");
    return ok;
}

bool
runStaticLint()
{
    bool ok = true;
    size_t functions = 0;
    for (const auto& mod : cir::benchmarkModules()) {
        for (const auto& fn : mod.functions) {
            functions++;
            cir::ClobberResult res = cir::analyzeClobbers(fn);
            cir::Function inst =
                analysis::instrumentPersistency(fn, res);
            auto rep = analysis::checkPersistency(inst);
            bool bad = !rep.clean() ||
                       rep.count(analysis::Severity::warning) > 0;
            if (bad || verbose)
                std::printf("%s/%s", mod.name.c_str(),
                            rep.toString(inst).c_str());
            ok = ok && !bad;
        }
    }
    std::printf("static lint: %zu functions, %s\n", functions,
                ok ? "ok" : "FAILED");
    return ok;
}

bool
runDynamicValidation(txn::RuntimeKind kind, const char* name)
{
    nvm::PoolConfig cfg;
    cfg.size = 32ULL << 20;
    cfg.maxThreads = 8;
    cfg.slotBytes = 128ULL << 10;
    auto pool = nvm::Pool::create(cfg);
    nvm::Pool::setCurrent(pool.get());
    alloc::PmAllocator heap(*pool);
    auto rt = rt::makeRuntime(kind, *pool, heap);

    // Bootstrap the root before attaching so setup writes are not
    // part of the audit (they are persisted by the bootstrap commit).
    txn::Engine boot(*rt);
    txn::run(boot, kLintMakeRoot);

    analysis::DurabilityValidator::Options opt;
    opt.requireDurability = kind != txn::RuntimeKind::noLog;
    analysis::DurabilityValidator validator(pool->cache(), opt);
    txn::Engine eng(*rt, &validator);
    uint64_t rootOff = pool->root();

    for (uint64_t v = 1; v <= 20; v++)
        txn::run(eng, kLintPush, rootOff, v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kLintIncr, rootOff);
    for (int i = 0; i < 5; i++)
        txn::run(eng, kLintPop, rootOff);

    // Power-loss round trip: recovery must restart the audit from a
    // consistent image and stay clean afterwards.
    pool->cache().crashAllLost();
    rt->recover();
    for (uint64_t v = 1; v <= 10; v++)
        txn::run(eng, kLintPush, rootOff, 100 + v);
    for (int i = 0; i < 10; i++)
        txn::run(eng, kLintPop, rootOff);

    bool ok = validator.violations().empty();
    std::printf("dynamic %-10s %s (%s)\n", name,
                ok ? "ok" : "FAILED", validator.summary().c_str());
    if (!ok) {
        for (const auto& v : validator.violations()) {
            std::printf("  commit #%llu tid=%u: %zu dirty, %zu "
                        "pending line(s)\n",
                        static_cast<unsigned long long>(v.commitIndex),
                        v.tid, v.dirtyLines, v.pendingLines);
        }
    }
    nvm::Pool::setCurrent(nullptr);
    return ok;
}

/** The validator itself must catch a planted dynamic violation. */
bool
runDynamicSelfCheck()
{
    nvm::PoolConfig cfg;
    cfg.size = 8ULL << 20;
    cfg.maxThreads = 2;
    cfg.slotBytes = 64ULL << 10;
    auto pool = nvm::Pool::create(cfg);
    analysis::DurabilityValidator validator(pool->cache());
    // A raw store that bypasses any runtime: dirty, never flushed.
    uint64_t junk = 0xDEAD;
    pool->writeAt(pool->heapOff(), &junk, sizeof(junk));
    validator.afterCommit(0);
    bool ok = validator.violations().size() == 1 &&
              validator.violations()[0].dirtyLines == 1;
    std::printf("dynamic self-check: %s\n", ok ? "ok" : "FAILED");
    return ok;
}

}  // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "-v") == 0) {
            verbose = true;
        } else {
            std::fprintf(stderr, "usage: %s [-v]\n", argv[0]);
            return 2;
        }
    }

    bool ok = runFixtureSelfCheck();
    ok = runStaticLint() && ok;
    ok = runDynamicSelfCheck() && ok;

    static const std::pair<txn::RuntimeKind, const char*> kKinds[] = {
        {txn::RuntimeKind::noLog, "nolog"},
        {txn::RuntimeKind::undo, "pmdk"},
        {txn::RuntimeKind::redo, "mnemosyne"},
        {txn::RuntimeKind::clobber, "clobber"},
        {txn::RuntimeKind::atlas, "atlas"},
        {txn::RuntimeKind::ido, "ido"},
    };
    for (const auto& [kind, name] : kKinds)
        ok = runDynamicValidation(kind, name) && ok;

    std::printf("cnvm_lint: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
