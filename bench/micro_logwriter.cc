/**
 * @file
 * Log-writer shootout: writer × protocol × op × threads.
 *
 * Same harness shape as micro_txpath, but the swept axis is the
 * pluggable log-append engine (baseline / zero / zerocached) selected
 * per run via rt::selectLogWriter — not the process-global
 * CNVM_LOG_WRITER knob, so one invocation produces the whole ablation
 * matrix. Two ops bracket the log-append cost:
 *
 *   rmw8       read-modify-write over a 512-word set, 8 passes per
 *              transaction: pass 1 pays one append per word, the rest
 *              are suppressed (undo/clobber) or logged again
 *              (atlas/redo).
 *   logheavy   one RMW per distinct word of a 4 KiB region per
 *              transaction: every store is a first-touch append. This
 *              is the O(entries)-fences worst case the zero-fence
 *              writers target.
 *
 * For threads=1 the rows carry fences/tx, entries/tx and flushes/tx
 * from the stats counters — the fence-elision and flush-coalescing
 * evidence (zerocached: ~4 entries per coalesced flush at 24-byte
 * headers + 8-byte payloads in 64-byte lines).
 *
 * Each series runs CNVM_REPS times (default 3) and reports the best
 * rep. The reps are interleaved across the whole matrix (rep 1 of
 * every series, then rep 2, ...), not run back-to-back: co-tenancy
 * slowdowns on a shared box are autocorrelated over seconds, and
 * back-to-back reps let one slow phase swallow every rep of one cell
 * and show up as a fake 20-30% regression there.
 *
 * Scale knobs: CNVM_OPS, CNVM_MAXTHREADS, CNVM_POOL_MB, CNVM_REPS,
 * CNVM_SMOKE.
 * Output: argv[1] (default BENCH_logwriter.current.json);
 * scripts/bench_logwriter.sh merges it into BENCH_logwriter.json.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runtimes/log_writer.h"
#include "txn/txrun.h"

namespace {

using namespace cnvm;
using Clock = std::chrono::steady_clock;

constexpr size_t kRmwWords = 512;
constexpr size_t kLogWords = 512;  // 4 KiB
constexpr size_t kRegionBytes = kLogWords * 8;

struct Row {
    std::string writer;
    std::string op;
    std::string system;
    unsigned threads;
    double opsPerSec = 0;
    double fencesPerTx = 0;   // threads==1 only, else 0
    double entriesPerTx = 0;  // threads==1 only, else 0
    double flushesPerTx = 0;  // threads==1 only, else 0
};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

const txn::FuncId kLwSetup = txn::registerTxFunc(
    "lw_setup", [](txn::Tx& tx, txn::ArgReader& a) {
        auto count = a.get<uint64_t>();
        auto bytes = a.get<uint64_t>();
        uint64_t dirOff = tx.pmallocOff(count * sizeof(uint64_t));
        for (uint64_t i = 0; i < count; i++) {
            uint64_t off = tx.pmallocOff(bytes);
            auto* slotp = static_cast<uint64_t*>(
                tx.pool().at(dirOff + i * sizeof(uint64_t)));
            tx.stBytes(slotp, &off, sizeof(off));
        }
        tx.pool().setRoot(dirOff);
    });

/** rmw8: args (regionOff, words, ops). */
const txn::FuncId kLwRmw = txn::registerTxFunc(
    "lw_rmw", [](txn::Tx& tx, txn::ArgReader& a) {
        auto off = a.get<uint64_t>();
        auto words = a.get<uint64_t>();
        auto ops = a.get<uint64_t>();
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        uint64_t w = 0;
        for (uint64_t i = 0; i < ops; i++) {
            uint64_t v;
            tx.ldBytes(&v, base + w * 8, 8);
            v += i;
            tx.stBytes(base + w * 8, &v, 8);
            if (++w == words)
                w = 0;
        }
    });

/** logheavy: args (regionOff, words). One RMW per distinct word. */
const txn::FuncId kLwLog = txn::registerTxFunc(
    "lw_log", [](txn::Tx& tx, txn::ArgReader& a) {
        auto off = a.get<uint64_t>();
        auto words = a.get<uint64_t>();
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        for (uint64_t w = 0; w < words; w++) {
            uint64_t v;
            tx.ldBytes(&v, base + w * 8, 8);
            v ^= w;
            tx.stBytes(base + w * 8, &v, 8);
        }
    });

std::vector<uint64_t>
setupRegions(bench::Env& env, unsigned threads)
{
    auto eng = env.engine();
    txn::run(eng, kLwSetup, static_cast<uint64_t>(threads),
             static_cast<uint64_t>(kRegionBytes));
    std::vector<uint64_t> offs(threads);
    const auto* dir =
        static_cast<const uint64_t*>(env.pool->at(env.pool->root()));
    for (unsigned t = 0; t < threads; t++)
        offs[t] = dir[t];
    return offs;
}

template <typename Fn>
double
timedTxLoop(bench::Env& env, const std::vector<uint64_t>& offs,
            unsigned threads, size_t txPerThread, Fn&& txBody)
{
    auto t0 = Clock::now();
    auto worker = [&](unsigned t) {
        txn::setThreadTid(t);
        auto eng = env.engine();
        for (size_t i = 0; i < txPerThread; i++)
            txBody(eng, offs[t]);
    };
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> ts;
        ts.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            ts.emplace_back(worker, t);
        for (auto& th : ts)
            th.join();
        txn::setThreadTid(0);
    }
    return secondsSince(t0);
}

uint64_t
protoEntries(const stats::Snapshot& d)
{
    // clobber entries are a subset of undoEntries; don't double count.
    return d[stats::Counter::undoEntries] +
           d[stats::Counter::redoEntries] +
           d[stats::Counter::idoEntries] +
           d[stats::Counter::lockLogEntries];
}

Row
runSeries(txn::RuntimeKind kind, rt::LogWriterKind writer,
          const std::string& op, unsigned threads, size_t opsPerThread)
{
    bench::Env env(kind);
    // The writer is swapped on the live runtime (no slot is mid-tx
    // yet), so the whole matrix runs in one process regardless of the
    // CNVM_LOG_WRITER ambient default.
    rt::selectLogWriter(*env.runtime, writer);
    auto offs = setupRegions(env, threads);

    size_t opsPerTx;
    std::function<void(txn::Engine&, uint64_t)> body;
    if (op == "rmw8") {
        size_t passes = kind == txn::RuntimeKind::ido ? 2 : 8;
        opsPerTx = std::min<size_t>(kRmwWords * passes, opsPerThread);
        body = [opsPerTx](txn::Engine& eng, uint64_t off) {
            txn::run(eng, kLwRmw, off,
                     static_cast<uint64_t>(kRmwWords),
                     static_cast<uint64_t>(opsPerTx));
        };
    } else {  // logheavy
        opsPerTx = kLogWords;
        body = [](txn::Engine& eng, uint64_t off) {
            txn::run(eng, kLwLog, off,
                     static_cast<uint64_t>(kLogWords));
        };
    }

    size_t txPerThread = std::max<size_t>(1, opsPerThread / opsPerTx);
    stats::resetAll();
    auto before = stats::aggregate();
    double secs = timedTxLoop(env, offs, threads, txPerThread, body);
    auto delta = stats::aggregate() - before;

    Row r;
    r.writer = rt::logWriterName(writer);
    r.op = op;
    r.system = env.runtime->name();
    r.threads = threads;
    r.opsPerSec = static_cast<double>(txPerThread) * opsPerTx *
                  threads / (secs > 0 ? secs : 1e-9);
    if (threads == 1) {
        double txs = static_cast<double>(txPerThread);
        r.fencesPerTx = delta[stats::Counter::fences] / txs;
        r.entriesPerTx =
            static_cast<double>(protoEntries(delta)) / txs;
        r.flushesPerTx = delta[stats::Counter::logFlushes] / txs;
    }
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    size_t ops = bench::totalOps(400000);
    auto maxThreads =
        static_cast<unsigned>(bench::envSize("CNVM_MAXTHREADS", 2));
    std::vector<unsigned> threadCounts{1u};
    if (maxThreads >= 2)
        threadCounts.push_back(2u);

    const std::vector<txn::RuntimeKind> kinds = {
        txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
        txn::RuntimeKind::redo, txn::RuntimeKind::atlas,
        txn::RuntimeKind::ido};
    const std::vector<rt::LogWriterKind> writers = {
        rt::LogWriterKind::baseline, rt::LogWriterKind::zero,
        rt::LogWriterKind::zerocached};

    struct Cell {
        txn::RuntimeKind kind;
        rt::LogWriterKind writer;
        const char* op;
        unsigned threads;
        size_t ops;
    };
    std::vector<Cell> cells;
    for (auto writer : writers) {
        for (auto kind : kinds) {
            for (unsigned t : threadCounts) {
                cells.push_back({kind, writer, "rmw8", t, ops});
                cells.push_back({kind, writer, "logheavy", t, ops / 4});
            }
        }
    }

    auto reps = bench::envSize("CNVM_REPS", 3);
    std::vector<Row> rows(cells.size());
    for (size_t rep = 0; rep < reps; rep++) {
        for (size_t i = 0; i < cells.size(); i++) {
            const Cell& c = cells[i];
            Row r = runSeries(c.kind, c.writer, c.op, c.threads, c.ops);
            if (rep == 0 || r.opsPerSec > rows[i].opsPerSec)
                rows[i] = r;
        }
    }

    const char* path =
        argc > 1 ? argv[1] : "BENCH_logwriter.current.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"ops_per_thread\": %zu,\n", ops);
    std::fprintf(f, "  \"series\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"writer\": \"%s\", \"op\": \"%s\", \"system\": "
            "\"%s\", \"threads\": %u, \"ops_per_sec\": %.0f, "
            "\"fences_per_tx\": %.2f, \"log_entries_per_tx\": %.2f, "
            "\"log_flushes_per_tx\": %.2f}%s\n",
            r.writer.c_str(), r.op.c_str(), r.system.c_str(),
            r.threads, r.opsPerSec, r.fencesPerTx, r.entriesPerTx,
            r.flushesPerTx, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (const auto& r : rows) {
        std::printf("%-10s %-9s %-10s threads=%u  %8.2f Mops/s  "
                    "fences/tx=%.1f entries/tx=%.1f flushes/tx=%.1f\n",
                    r.writer.c_str(), r.op.c_str(), r.system.c_str(),
                    r.threads, r.opsPerSec / 1e6, r.fencesPerTx,
                    r.entriesPerTx, r.flushesPerTx);
    }
    return 0;
}
