/**
 * @file
 * Figure 8: log volume per transaction, iDO vs Clobber-NVM, on the
 * four data-structure benchmarks (single thread, YCSB-Load inserts).
 *
 * iDO logs a register snapshot at every idempotent-region boundary and
 * keeps the stack in NVM; Clobber-NVM logs only clobbered inputs plus
 * one v_log record. Paper: iDO logs 1x-23x more frequently and on
 * average 4.2x more bytes (up to 7.2x on skiplist).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;
using stats::Counter;

bench::Csv& csv()
{
    static bench::Csv c("fig8.csv");
    static bool once = [] {
        c.comment("fig8: system,structure,log_entries_per_tx,"
                  "log_bytes_per_tx");
        return true;
    }();
    (void)once;
    return c;
}

struct Volume {
    double entriesPerTx;
    double bytesPerTx;
};

Volume
measure(txn::RuntimeKind kind, const std::string& structure,
        size_t ops)
{
    bench::Env env(kind);
    auto eng = env.engine();
    auto kv = ds::makeKv(structure, eng);
    size_t keyLen = structure == "bptree" ? 32 : 8;
    wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, 256);

    stats::resetAll();
    auto before = stats::aggregate();
    for (size_t i = 0; i < ops; i++)
        kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));
    auto d = stats::aggregate() - before;

    double n = static_cast<double>(ops);
    if (kind == txn::RuntimeKind::ido) {
        return {static_cast<double>(d[Counter::idoEntries]) / n,
                static_cast<double>(d[Counter::idoBytes]) / n};
    }
    return {static_cast<double>(d[Counter::clobberEntries] +
                                d[Counter::vlogEntries]) / n,
            static_cast<double>(d[Counter::clobberBytes] +
                                d[Counter::vlogBytes]) / n};
}

void
runFig8(benchmark::State& state, const std::string& structure)
{
    size_t ops = bench::totalOps(20000);
    for (auto _ : state) {
        auto t0 = std::chrono::steady_clock::now();
        Volume ido = measure(txn::RuntimeKind::ido, structure, ops);
        Volume clob =
            measure(txn::RuntimeKind::clobber, structure, ops);
        auto t1 = std::chrono::steady_clock::now();
        state.SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
        state.counters["ido_bytes_per_tx"] = ido.bytesPerTx;
        state.counters["clobber_bytes_per_tx"] = clob.bytesPerTx;
        state.counters["bytes_ratio"] =
            ido.bytesPerTx / clob.bytesPerTx;
        state.counters["entries_ratio"] =
            ido.entriesPerTx / clob.entriesPerTx;
        csv().row("ido,%s,%.3f,%.1f", structure.c_str(),
                  ido.entriesPerTx, ido.bytesPerTx);
        csv().row("clobber,%s,%.3f,%.1f", structure.c_str(),
                  clob.entriesPerTx, clob.bytesPerTx);
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        std::string name = std::string("fig8/") + structure;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [structure](benchmark::State& st) {
                runFig8(st, structure);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
