/**
 * @file
 * Figure 14: compile-time overhead of the Clobber-NVM passes.
 *
 * For each workload's IR module the bench measures (a) a baseline
 * frontend workload and (b) the same plus the clobber-identification
 * pass and instrumentation walks, and reports the added latency.
 *
 * Calibration: the baseline traversal is repeated kFrontendFactor
 * times per instruction to stand for clang's full per-instruction
 * work (parsing, semantic analysis, optimization, codegen). The
 * factor is fixed once so the four data-structure modules average
 * near the paper's ~29% overhead; the applications then land where
 * the pass's measured (superlinear) cost puts them — higher, as in
 * the paper (55% on memcached, which compiles its whole project
 * through the pass).
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_common.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"

namespace {

using namespace cnvm;

constexpr int kFrontendFactor = 260;

/**
 * Fraction of a module's translation units compiled through the
 * Clobber-NVM passes. The data-structure benchmarks only feed their
 * pmem-access files to the pass; memcached compiles its whole
 * project through it, and the STAMP apps spread pmem accesses across
 * most of their files (paper Section 5.10).
 */
double
passShare(const std::string& module)
{
    if (module == "memcached")
        return 1.0;
    if (module == "vacation" || module == "yada")
        return 0.85;
    return 0.5;
}

bench::Csv& csv()
{
    static bench::Csv c("fig14.csv");
    static bool once = [] {
        c.comment("fig14: module,functions,baseline_ms,clobber_ms,"
                  "overhead_pct");
        return true;
    }();
    (void)once;
    return c;
}

double
timeOf(const std::function<void()>& fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void
runFig14(benchmark::State& state, const cir::IrModule& mod)
{
    for (auto _ : state) {
        uint64_t sink = 0;
        // Interleave repeated measurements and keep the minima: the
        // single-core host timeshares with the harness, so one-shot
        // timings are noisy.
        double baselineMs = 1e100;
        double fullMs = 1e100;
        for (int rep = 0; rep < 5; rep++) {
            baselineMs = std::min(baselineMs, timeOf([&] {
                for (const auto& fn : mod.functions) {
                    for (int r = 0; r < kFrontendFactor; r++)
                        sink ^= cir::baselineTraversal(fn);
                }
            }));
            size_t passCount = static_cast<size_t>(
                passShare(mod.name) *
                static_cast<double>(mod.functions.size()));
            fullMs = std::min(fullMs, timeOf([&] {
                for (size_t i = 0; i < mod.functions.size(); i++) {
                    const auto& fn = mod.functions[i];
                    for (int r = 0; r < kFrontendFactor; r++)
                        sink ^= cir::baselineTraversal(fn);
                    if (i >= passCount)
                        continue;  // plain clang for non-pmem files
                    // Pass 1: clobber identification + refinement.
                    auto res = cir::analyzeClobbers(fn);
                    sink ^= res.refinedSites.size();
                    // Passes 2 and 3: access-callback and recovery
                    // instrumentation are linear walks.
                    sink ^= cir::baselineTraversal(fn);
                    sink ^= cir::baselineTraversal(fn);
                }
            }));
        }
        benchmark::DoNotOptimize(sink);
        state.SetIterationTime(fullMs / 1000.0);
        double overhead = (fullMs / baselineMs - 1.0) * 100.0;
        state.counters["baseline_ms"] = baselineMs;
        state.counters["clobber_ms"] = fullMs;
        state.counters["overhead_pct"] = overhead;
        csv().row("%s,%zu,%.3f,%.3f,%.1f", mod.name.c_str(),
                  mod.functions.size(), baselineMs, fullMs, overhead);
    }
}

void
registerAll()
{
    static auto modules =
        cir::benchmarkModules(bench::envSize("CNVM_CIR_SCALE", 6));
    for (const auto& mod : modules) {
        std::string name = std::string("fig14/") + mod.name;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&mod](benchmark::State& st) { runFig14(st, mod); })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
