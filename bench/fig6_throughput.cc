/**
 * @file
 * Figure 6: YCSB-Load insert throughput of the four persistent data
 * structures under Clobber-NVM, PMDK, Mnemosyne and Atlas, scaled from
 * 1 to 24 threads.
 *
 * Paper setup: 1M key-value pairs, 8-byte keys (32-byte for B+Tree),
 * 256-byte values. The thread sweep runs on the logical-thread
 * executor (see src/sim): reported seconds are simulated time.
 *
 * Expected shape: Clobber-NVM leads everywhere single-threaded
 * (≈1.8x PMDK, ≈4.3x Atlas); B+Tree scales best (per-node locks);
 * Mnemosyne catches up at high thread counts on the global-lock
 * structures (rbtree, skiplist).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig6.csv");
    static bool once = [] {
        c.comment("fig6: system,structure,threads,run,valsize,"
                  "throughput_ops_per_sec");
        return true;
    }();
    (void)once;
    return c;
}

void
runFig6(benchmark::State& state, const std::string& structure,
        txn::RuntimeKind kind)
{
    auto threads = static_cast<unsigned>(state.range(0));
    size_t ops = bench::totalOps(40000);
    size_t keyLen = structure == "bptree" ? 32 : 8;
    constexpr size_t kValLen = 256;

    for (auto _ : state) {
        bench::Env env(kind);
        auto eng = env.engine();
        auto kv = ds::makeKv(structure, eng);
        wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, kValLen);

        sim::Executor exec(threads);
        size_t perThread = ops / threads;
        double simSeconds = exec.run(
            perThread, [&](sim::ThreadCtx& ctx, size_t i) {
                uint64_t id = ctx.tid() * perThread + i;
                kv->insert(ycsb.keyOf(id), ycsb.valueOf(id));
            });
        state.SetIterationTime(simSeconds);
        double tput = static_cast<double>(perThread * threads) /
                      simSeconds;
        state.counters["ops_per_sec"] = tput;
        csv().row("%s,%s,%u,0,%zu,%.0f", bench::systemName(kind),
                  structure.c_str(), threads, kValLen, tput);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * ops));
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        for (auto kind : bench::figureSystems()) {
            std::string name = std::string("fig6/") +
                               bench::systemName(kind) + "/" +
                               structure;
            auto* b = benchmark::RegisterBenchmark(
                name.c_str(),
                [structure, kind](benchmark::State& st) {
                    runFig6(st, structure, kind);
                });
            b->UseManualTime()->Iterations(1)->Unit(
                benchmark::kMillisecond);
            for (unsigned t : bench::threadSweep())
                b->Arg(t);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
