/**
 * @file
 * Figure 9: recovery overhead after a random crash, Clobber-NVM vs
 * PMDK, on the four data structures.
 *
 * Method (paper Section 5.5): load the structure, crash a random
 * insert mid-transaction, then measure the three recovery steps —
 * reopening the pool (allocator/bitmap rebuild dominates, the paper's
 * "pool management"), applying the log (undo rollback vs clobber_log
 * restore), and, for Clobber-NVM, re-executing the interrupted
 * transaction. Latencies here are real wall time of the recovery code.
 *
 * On top of the figure, the binary always runs an instant-restart
 * sweep: time-to-first-transaction (TTFT) after a crash, full restart
 * (eager allocator scan + stop-the-world recover) vs lazy restart
 * (deferred rebuild + triage + first-touch heal), across pool sizes.
 * Results land in a JSON file (argv[1], default
 * BENCH_recovery.current.json) that scripts/bench_recovery.sh merges
 * into BENCH_recovery.json.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig9.csv");
    static bool once = [] {
        c.comment("fig9: system,structure,crash_point,"
                  "recover_total_us,rebuild_us");
        return true;
    }();
    (void)once;
    return c;
}

void
runFig9(benchmark::State& state, const std::string& structure,
        txn::RuntimeKind kind)
{
    size_t ops = bench::totalOps(20000) / 2;
    size_t keyLen = structure == "bptree" ? 32 : 8;
    Xorshift rng(2026);

    double totalUs = 0;
    double rebuildUs = 0;
    int runs = 0;
    for (auto _ : state) {
        bench::Env env(kind);
        auto eng = env.engine();
        auto kv = ds::makeKv(structure, eng);
        wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, 256);
        for (size_t i = 0; i < ops; i++)
            kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));

        // Crash a random insert at a random write.
        uint64_t trap = 1 + rng.nextUint(30);
        env.pool->armWriteTrap(trap);
        bool crashed = false;
        try {
            kv->insert(ycsb.keyOf(ops + 1), ycsb.valueOf(ops + 1));
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        env.pool->armWriteTrap(0);
        if (crashed)
            env.pool->simulateCrash(rng.next());

        // Recovery = allocator rebuild ("pool open") + log apply +
        // (clobber) re-execution. recover() performs all three; the
        // rebuild share is measured separately afterwards.
        auto t0 = std::chrono::steady_clock::now();
        env.runtime->recover();
        auto t1 = std::chrono::steady_clock::now();
        env.heap->rebuild();
        auto t2 = std::chrono::steady_clock::now();

        double recUs =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        double rbUs =
            std::chrono::duration<double, std::micro>(t2 - t1).count();
        state.SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
        totalUs += recUs;
        rebuildUs += rbUs;
        runs++;
        csv().row("%s,%s,%lu,%.1f,%.1f", bench::systemName(kind),
                  structure.c_str(), trap, recUs, rbUs);
    }
    if (runs > 0) {
        state.counters["recover_us"] = totalUs / runs;
        state.counters["pool_mgmt_us"] = rebuildUs / runs;
    }
}

/** One cell of the instant-restart sweep. */
struct TtftRow {
    std::string system;
    size_t poolMB = 0;
    std::string mode;      ///< "full" or "lazy"
    double recoverUs = 0;  ///< restart to "transactions admitted"
    double ttftUs = 0;     ///< restart to first commit acked
    uint64_t pendingAtFirstTx = 0;  ///< heal items still outstanding
};

double
usBetween(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

/**
 * Crash a loaded hashmap, then restart the way a fresh process would:
 * construct the allocator and runtime over the surviving pool and run
 * recovery in `mode`. TTFT is the wall time from the first restart
 * instruction to the first committed transaction. The lazy arm defers
 * the bitmap scan (beginLazyRebuild + incremental reserve pulls) and
 * heals the dirty slot on first touch; the drain to a fully healed
 * pool happens after the clock stops, exactly as the background healer
 * would do it in a server.
 */
TtftRow
runTtftCell(txn::RuntimeKind kind, size_t poolMB, bool lazy,
            size_t ops, Xorshift& rng)
{
    bench::Env env(kind, rt::ClobberPolicy::refined, poolMB << 20);
    uint64_t rootOff = 0;
    {
        auto eng = env.engine();
        auto kv = ds::makeKv("hashmap", eng);
        rootOff = kv->rootOff();
        wl::Ycsb ycsb(wl::YcsbKind::load, ops + 2, 8, 256);
        for (size_t i = 0; i < ops; i++)
            kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));

        env.pool->armWriteTrap(1 + rng.nextUint(30));
        bool crashed = false;
        try {
            kv->insert(ycsb.keyOf(ops), ycsb.valueOf(ops));
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        env.pool->armWriteTrap(0);
        if (crashed)
            env.pool->simulateCrash(rng.next());
    }

    TtftRow row;
    row.system = bench::systemName(kind);
    row.poolMB = poolMB;
    row.mode = lazy ? "lazy" : "full";

    wl::Ycsb ycsb(wl::YcsbKind::load, ops + 2, 8, 256);
    auto t0 = std::chrono::steady_clock::now();
    env.heap =
        std::make_unique<alloc::PmAllocator>(*env.pool, lazy);
    env.runtime = rt::makeRuntime(kind, *env.pool, *env.heap,
                                  rt::ClobberPolicy::refined);
    auto eng = env.engine();
    eng.recover(lazy ? txn::RecoveryMode::lazy
                     : txn::RecoveryMode::full,
                /* backgroundHealer */ false);
    auto tAdmit = std::chrono::steady_clock::now();
    auto kv = ds::makeKv("hashmap", eng, rootOff);
    kv->insert(ycsb.keyOf(ops + 1), ycsb.valueOf(ops + 1));
    auto tFirst = std::chrono::steady_clock::now();

    row.recoverUs = usBetween(t0, tAdmit);
    row.ttftUs = usBetween(t0, tFirst);
    row.pendingAtFirstTx = eng.recoveryPending();
    eng.finishRecovery();  // off the clock: the healer's share
    return row;
}

/**
 * The instant-restart sweep: full vs lazy TTFT over clobber and undo
 * at increasing pool sizes (the acceptance bar for lazy recovery is a
 * >=10x TTFT win on the largest pool, where the eager bitmap scan
 * dominates the restart). Writes `path` and prints the ratios.
 */
void
runTtftSweep(const char* path)
{
    size_t ops = bench::totalOps(20000) / 2;
    std::vector<size_t> poolsMB =
        bench::smokeMode() ? std::vector<size_t>{64}
                           : std::vector<size_t>{64, 256, 512};
    size_t reps = bench::envSize("CNVM_REPS", 3);

    std::vector<TtftRow> rows;
    for (auto kind :
         {txn::RuntimeKind::clobber, txn::RuntimeKind::undo}) {
        for (size_t mb : poolsMB) {
            for (bool lazy : {false, true}) {
                Xorshift rng(2026 + mb + (lazy ? 1 : 0));
                TtftRow best;
                for (size_t r = 0; r < reps; r++) {
                    TtftRow one =
                        runTtftCell(kind, mb, lazy, ops, rng);
                    if (r == 0 || one.ttftUs < best.ttftUs)
                        best = one;
                }
                rows.push_back(best);
            }
        }
    }

    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"load_ops\": %zu,\n  \"ttft\": [\n", ops);
    for (size_t i = 0; i < rows.size(); i++) {
        const TtftRow& r = rows[i];
        std::fprintf(f,
                     "    {\"system\": \"%s\", \"pool_mb\": %zu, "
                     "\"mode\": \"%s\", \"recover_us\": %.1f, "
                     "\"ttft_us\": %.1f, \"pending_at_first_tx\": "
                     "%llu}%s\n",
                     r.system.c_str(), r.poolMB, r.mode.c_str(),
                     r.recoverUs, r.ttftUs,
                     static_cast<unsigned long long>(
                         r.pendingAtFirstTx),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (size_t i = 0; i + 1 < rows.size(); i += 2) {
        const TtftRow& full = rows[i];
        const TtftRow& lz = rows[i + 1];
        std::printf("ttft %-8s pool=%3zuMB  full=%9.1fus  "
                    "lazy=%8.1fus  speedup=%.1fx\n",
                    full.system.c_str(), full.poolMB, full.ttftUs,
                    lz.ttftUs, full.ttftUs / lz.ttftUs);
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        for (auto kind :
             {txn::RuntimeKind::clobber, txn::RuntimeKind::undo}) {
            std::string name = std::string("fig9/") +
                               bench::systemName(kind) + "/" +
                               structure;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [structure, kind](benchmark::State& st) {
                    runFig9(st, structure, kind);
                })
                ->UseManualTime()
                ->Iterations(5)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    // A leading non-flag argument is the instant-restart JSON path
    // (google-benchmark flags all start with '-').
    const char* ttftOut = "BENCH_recovery.current.json";
    if (argc > 1 && argv[1][0] != '-') {
        ttftOut = argv[1];
        for (int i = 1; i + 1 < argc; i++)
            argv[i] = argv[i + 1];
        argc--;
    }
    runTtftSweep(ttftOut);

    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
