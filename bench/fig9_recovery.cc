/**
 * @file
 * Figure 9: recovery overhead after a random crash, Clobber-NVM vs
 * PMDK, on the four data structures.
 *
 * Method (paper Section 5.5): load the structure, crash a random
 * insert mid-transaction, then measure the three recovery steps —
 * reopening the pool (allocator/bitmap rebuild dominates, the paper's
 * "pool management"), applying the log (undo rollback vs clobber_log
 * restore), and, for Clobber-NVM, re-executing the interrupted
 * transaction. Latencies here are real wall time of the recovery code.
 */
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig9.csv");
    static bool once = [] {
        c.comment("fig9: system,structure,crash_point,"
                  "recover_total_us,rebuild_us");
        return true;
    }();
    (void)once;
    return c;
}

void
runFig9(benchmark::State& state, const std::string& structure,
        txn::RuntimeKind kind)
{
    size_t ops = bench::totalOps(20000) / 2;
    size_t keyLen = structure == "bptree" ? 32 : 8;
    Xorshift rng(2026);

    double totalUs = 0;
    double rebuildUs = 0;
    int runs = 0;
    for (auto _ : state) {
        bench::Env env(kind);
        auto eng = env.engine();
        auto kv = ds::makeKv(structure, eng);
        wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, 256);
        for (size_t i = 0; i < ops; i++)
            kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));

        // Crash a random insert at a random write.
        uint64_t trap = 1 + rng.nextUint(30);
        env.pool->armWriteTrap(trap);
        bool crashed = false;
        try {
            kv->insert(ycsb.keyOf(ops + 1), ycsb.valueOf(ops + 1));
        } catch (const nvm::CrashInjected&) {
            crashed = true;
        }
        env.pool->armWriteTrap(0);
        if (crashed)
            env.pool->simulateCrash(rng.next());

        // Recovery = allocator rebuild ("pool open") + log apply +
        // (clobber) re-execution. recover() performs all three; the
        // rebuild share is measured separately afterwards.
        auto t0 = std::chrono::steady_clock::now();
        env.runtime->recover();
        auto t1 = std::chrono::steady_clock::now();
        env.heap->rebuild();
        auto t2 = std::chrono::steady_clock::now();

        double recUs =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        double rbUs =
            std::chrono::duration<double, std::micro>(t2 - t1).count();
        state.SetIterationTime(
            std::chrono::duration<double>(t1 - t0).count());
        totalUs += recUs;
        rebuildUs += rbUs;
        runs++;
        csv().row("%s,%s,%lu,%.1f,%.1f", bench::systemName(kind),
                  structure.c_str(), trap, recUs, rbUs);
    }
    if (runs > 0) {
        state.counters["recover_us"] = totalUs / runs;
        state.counters["pool_mgmt_us"] = rebuildUs / runs;
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        for (auto kind :
             {txn::RuntimeKind::clobber, txn::RuntimeKind::undo}) {
            std::string name = std::string("fig9/") +
                               bench::systemName(kind) + "/" +
                               structure;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [structure, kind](benchmark::State& st) {
                    runFig9(st, structure, kind);
                })
                ->UseManualTime()
                ->Iterations(5)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
