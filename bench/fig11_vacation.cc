/**
 * @file
 * Figure 11: STAMP vacation throughput — No-log / Clobber-NVM / PMDK /
 * Mnemosyne, on red-black-tree vs AVL-tree tables, sweeping queries
 * per task (the read share of each transaction).
 *
 * Expected shape (paper Section 5.7): every system gains a few
 * percent on the AVL tables; PMDK's and Clobber-NVM's overhead vs
 * No-log *shrinks* as queries/task grows (more reads, same logging),
 * while Mnemosyne's *grows* (every read pays redo interposition).
 */
#include <benchmark/benchmark.h>

#include "apps/vacation/vacation.h"
#include <map>
#include <tuple>

#include "bench_common.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig11.csv");
    static bool once = [] {
        c.comment("fig11: system,table,queries_per_task,"
                  "throughput_tasks_per_sec,overhead_vs_nolog_pct");
        return true;
    }();
    (void)once;
    return c;
}

double
measure(txn::RuntimeKind kind, apps::TableKind table, unsigned q,
        size_t tasks)
{
    bench::Env env(kind, rt::ClobberPolicy::refined, 512ULL << 20);
    auto eng = env.engine();
    apps::Vacation::Config cfg;
    cfg.tableKind = table;
    cfg.recordsPerTable = bench::envSize("CNVM_VAC_RECORDS", 32768);
    cfg.queriesPerTask = q;
    apps::Vacation vac(eng, 0, cfg);

    sim::Executor exec(1);
    double simSeconds =
        exec.run(tasks, [&](sim::ThreadCtx&, size_t i) {
            vac.runTask(i + 1);
        });
    return static_cast<double>(tasks) / simSeconds;
}

/** The No-log baseline, computed once per (table, q). */
double
baseline(apps::TableKind table, unsigned q, size_t tasks)
{
    static std::map<std::tuple<int, unsigned, size_t>, double> cache;
    auto key = std::make_tuple(static_cast<int>(table), q, tasks);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    double v = measure(txn::RuntimeKind::noLog, table, q, tasks);
    cache[key] = v;
    return v;
}

void
runFig11(benchmark::State& state, txn::RuntimeKind kind,
         apps::TableKind table)
{
    auto q = static_cast<unsigned>(state.range(0));
    size_t tasks = bench::totalOps(8000);
    const char* tableName =
        table == apps::TableKind::rbtree ? "rbtree" : "avltree";

    for (auto _ : state) {
        double base = baseline(table, q, tasks);
        double tput = kind == txn::RuntimeKind::noLog
                          ? base
                          : measure(kind, table, q, tasks);
        state.SetIterationTime(static_cast<double>(tasks) / tput);
        double overhead = (base / tput - 1.0) * 100.0;
        state.counters["tasks_per_sec"] = tput;
        state.counters["overhead_vs_nolog_pct"] = overhead;
        csv().row("%s,%s,%u,%.0f,%.1f", bench::systemName(kind),
                  tableName, q, tput, overhead);
    }
}

void
registerAll()
{
    for (auto table :
         {apps::TableKind::rbtree, apps::TableKind::avltree}) {
        for (auto kind :
             {txn::RuntimeKind::noLog, txn::RuntimeKind::clobber,
              txn::RuntimeKind::undo, txn::RuntimeKind::redo}) {
            std::string name =
                std::string("fig11/") + bench::systemName(kind) + "/" +
                (table == apps::TableKind::rbtree ? "rbtree"
                                                  : "avltree");
            auto* b = benchmark::RegisterBenchmark(
                name.c_str(), [kind, table](benchmark::State& st) {
                    runFig11(st, kind, table);
                });
            b->UseManualTime()->Iterations(1)->Unit(
                benchmark::kMillisecond);
            for (unsigned q : {2u, 4u, 6u})
                b->Arg(q);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
