/**
 * @file
 * Hot-path microbenchmark for the NVM write-tracking layer.
 *
 * Unlike the figure benches this measures *wall-clock* cost of the
 * model layer itself (Pool::write / flush / fence) with real
 * std::threads, so regressions in the tracking data structures are
 * visible independently of the logical-thread timing model. Results
 * go to BENCH_hotpath.json (artifact-style, one object per series) so
 * the perf trajectory is recorded across PRs.
 *
 * Series:
 *   tracked_write        repeated 8-byte stores to a small per-thread
 *                        stripe of already-dirty lines (the per-thread
 *                        dirty-line cache's target workload)
 *   tracked_write_spread stores over a stripe much larger than any
 *                        per-thread cache, so every store probes the
 *                        shared line table
 *   flush_line           dirty-then-flush cycles over a 4 KiB batch of
 *                        lines per fence (commit-style write-back)
 *   fence                store + flush + fence round trips
 *
 * Scale knobs: CNVM_OPS (stores per thread), CNVM_MAXTHREADS,
 * CNVM_POOL_MB.
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "nvm/pool.h"

namespace {

using namespace cnvm;
using Clock = std::chrono::steady_clock;

struct Series {
    std::string op;
    unsigned threads;
    double opsPerSec;
};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::unique_ptr<nvm::Pool>
makePool()
{
    nvm::PoolConfig cfg;
    cfg.size = bench::envSize("CNVM_POOL_MB", 256) << 20;
    cfg.maxThreads = 32;
    cfg.slotBytes = 64ULL << 10;
    return nvm::Pool::create(cfg);
}

/**
 * Run `fn(tid)` on `threads` std::threads and return total ops/sec,
 * where each invocation performs `opsPerThread` operations.
 */
template <typename Fn>
double
timed(unsigned threads, size_t opsPerThread, Fn&& fn)
{
    auto t0 = Clock::now();
    if (threads == 1) {
        fn(0u);
    } else {
        std::vector<std::thread> ts;
        ts.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            ts.emplace_back([&fn, t] { fn(t); });
        for (auto& th : ts)
            th.join();
    }
    double secs = secondsSince(t0);
    return static_cast<double>(opsPerThread) * threads /
           (secs > 0 ? secs : 1e-9);
}

/** Flush `n` (64-byte) lines given by `lines`, then fence. */
void
flushBatchAndFence(nvm::Pool& p, std::vector<uint64_t>& lines)
{
    p.flushLines(lines.data(), lines.size());
    p.fence();
}

double
benchTrackedWrite(unsigned threads, size_t ops, size_t stripeLines)
{
    auto pool = makePool();
    size_t stripeBytes = stripeLines * nvm::kCacheLine;
    uint64_t heap = pool->heapOff();
    return timed(threads, ops, [&](unsigned tid) {
        uint64_t base = heap + 4096 + tid * (stripeBytes + 4096);
        size_t words = stripeBytes / 8;
        size_t w = 0;
        for (size_t i = 0; i < ops; i++) {
            pool->writeAt(base + w * 8, &i, sizeof(i));
            if (++w == words)
                w = 0;
        }
    });
}

double
benchFlushLine(unsigned threads, size_t ops)
{
    auto pool = makePool();
    constexpr size_t kBatch = 64;  // 4 KiB of lines per fence
    uint64_t heap = pool->heapOff();
    size_t rounds = std::max<size_t>(1, ops / kBatch);
    return timed(threads, rounds * kBatch, [&](unsigned tid) {
        uint64_t base = heap + 4096 +
                        tid * (kBatch * nvm::kCacheLine + 4096);
        std::vector<uint64_t> lines(kBatch);
        for (size_t r = 0; r < rounds; r++) {
            for (size_t l = 0; l < kBatch; l++) {
                uint64_t off = base + l * nvm::kCacheLine;
                pool->writeAt(off, &r, sizeof(r));
                lines[l] = off / nvm::kCacheLine;
            }
            flushBatchAndFence(*pool, lines);
        }
    });
}

double
benchFence(unsigned threads, size_t ops)
{
    auto pool = makePool();
    uint64_t heap = pool->heapOff();
    size_t rounds = std::max<size_t>(1, ops / 16);
    return timed(threads, rounds, [&](unsigned tid) {
        uint64_t off = heap + 4096 + tid * 4096;
        for (size_t r = 0; r < rounds; r++) {
            pool->writeAt(off, &r, sizeof(r));
            pool->flush(pool->at(off), 8);
            pool->fence();
        }
    });
}

}  // namespace

int
main(int argc, char** argv)
{
    size_t ops = bench::totalOps(2000000);
    auto maxThreads =
        static_cast<unsigned>(bench::envSize("CNVM_MAXTHREADS", 4));
    std::vector<unsigned> threadCounts;
    for (unsigned t : {1u, 2u, 4u}) {
        if (t <= maxThreads)
            threadCounts.push_back(t);
    }

    std::vector<Series> out;
    for (unsigned t : threadCounts) {
        out.push_back({"tracked_write", t,
                       benchTrackedWrite(t, ops, /*stripeLines=*/256)});
        out.push_back(
            {"tracked_write_spread", t,
             benchTrackedWrite(t, ops, /*stripeLines=*/65536)});
        out.push_back({"flush_line", t, benchFlushLine(t, ops / 4)});
        out.push_back({"fence", t, benchFence(t, ops / 4)});
    }

    const char* path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"ops_per_thread\": %zu,\n", ops);
    std::fprintf(f, "  \"pool_mb\": %zu,\n",
                 bench::envSize("CNVM_POOL_MB", 256));
    std::fprintf(f, "  \"series\": [\n");
    for (size_t i = 0; i < out.size(); i++) {
        std::fprintf(f,
                     "    {\"op\": \"%s\", \"threads\": %u, "
                     "\"ops_per_sec\": %.0f}%s\n",
                     out[i].op.c_str(), out[i].threads, out[i].opsPerSec,
                     i + 1 < out.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (const auto& s : out) {
        std::printf("%-22s threads=%u  %.2f Mops/s\n", s.op.c_str(),
                    s.threads, s.opsPerSec / 1e6);
    }
    return 0;
}
