/**
 * @file
 * Transaction hot-path microbenchmark for the runtime layer.
 *
 * micro_hotpath measures the NVM model (Pool/CacheSim); this bench sits
 * one layer up and measures what a txfunc actually pays per interposed
 * load/store in each protocol runtime: block-state bookkeeping probes,
 * log appends, and ordering fences. Wall-clock, real threads.
 *
 * Series (per protocol, per thread count):
 *   rmw8       read-modify-write of 8-byte words round-robin over a
 *              512-word working set, many ops per transaction. After
 *              the first pass every access hits already-read /
 *              already-written blocks — the set-probe hot path the
 *              block-state map and access-run memoization target.
 *   seqcpy     blind sequential 64-byte stores sweeping a 16 KiB
 *              region, several passes per transaction (b+tree
 *              shift-insert / value-copy pattern).
 *   logheavy   one read-modify-write per distinct word of a 4 KiB
 *              region per transaction: every store is a first-touch,
 *              so undo-family protocols pay one log append (+ fence
 *              where the protocol requires it) per op.
 *   e2e_hashmap end-to-end hashmap YCSB-load-style inserts through
 *              txn::run (fig6-style anchor, wall clock).
 *
 * For threads=1 the JSON rows also carry fences/tx and log entries/tx
 * from the stats counters — the fence-elision evidence.
 *
 * Scale knobs: CNVM_OPS (ops per series per thread), CNVM_MAXTHREADS,
 * CNVM_POOL_MB, CNVM_SMOKE. Output: argv[1] (default
 * BENCH_txpath.current.json); scripts/bench_txpath.sh merges it into
 * BENCH_txpath.json under a series label.
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "structures/kv.h"
#include "txn/txrun.h"

namespace {

using namespace cnvm;
using Clock = std::chrono::steady_clock;

constexpr size_t kRmwWords = 512;
constexpr size_t kSeqBytes = 16ULL << 10;
constexpr size_t kSeqChunk = 64;
/**
 * Sweep passes per transaction. Pass 1 pays the per-protocol logging;
 * the rest exercise the suppressed-store path (already written /
 * already logged), which is what the block-state map speeds up.
 * Protocols that log every store unconditionally (atlas, redo) get no
 * suppression and would overflow the slot log area at 12 passes, so
 * they keep the lower count.
 */
constexpr size_t kSeqPasses = 12;
constexpr size_t kSeqPassesEveryStoreLogged = 4;
constexpr size_t kLogWords = 512;  // 4 KiB

/** Largest per-thread region any series touches. */
constexpr size_t kRegionBytes = kSeqBytes;

struct Row {
    std::string op;
    std::string system;
    unsigned threads;
    double opsPerSec = 0;
    double fencesPerTx = 0;   // threads==1 only, else 0
    double entriesPerTx = 0;  // threads==1 only, else 0
    double flushesPerTx = 0;  // log-writer flushes (threads==1 only)
    double logBytesPerTx = 0; // appended log bytes (threads==1 only)
};

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Setup txfunc: allocate `count` regions of `bytes` and publish their
 * offsets as a root-anchored array the bench reads back directly.
 */
const txn::FuncId kTxpSetup = txn::registerTxFunc(
    "txp_setup", [](txn::Tx& tx, txn::ArgReader& a) {
        auto count = a.get<uint64_t>();
        auto bytes = a.get<uint64_t>();
        uint64_t dirOff = tx.pmallocOff(count * sizeof(uint64_t));
        for (uint64_t i = 0; i < count; i++) {
            uint64_t off = tx.pmallocOff(bytes);
            auto* slotp = static_cast<uint64_t*>(
                tx.pool().at(dirOff + i * sizeof(uint64_t)));
            tx.stBytes(slotp, &off, sizeof(off));
        }
        tx.pool().setRoot(dirOff);
    });

/** rmw8: args (regionOff, words, ops). */
const txn::FuncId kTxpRmw = txn::registerTxFunc(
    "txp_rmw", [](txn::Tx& tx, txn::ArgReader& a) {
        auto off = a.get<uint64_t>();
        auto words = a.get<uint64_t>();
        auto ops = a.get<uint64_t>();
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        uint64_t w = 0;
        for (uint64_t i = 0; i < ops; i++) {
            uint64_t v;
            tx.ldBytes(&v, base + w * 8, 8);
            v += i;
            tx.stBytes(base + w * 8, &v, 8);
            if (++w == words)
                w = 0;
        }
    });

/** seqcpy: args (regionOff, bytes, passes). Blind 64-byte stores. */
const txn::FuncId kTxpSeq = txn::registerTxFunc(
    "txp_seq", [](txn::Tx& tx, txn::ArgReader& a) {
        auto off = a.get<uint64_t>();
        auto bytes = a.get<uint64_t>();
        auto passes = a.get<uint64_t>();
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        uint8_t buf[kSeqChunk];
        std::memset(buf, 0x5a, sizeof(buf));
        for (uint64_t p = 0; p < passes; p++) {
            buf[0] = static_cast<uint8_t>(p);
            for (uint64_t o = 0; o + kSeqChunk <= bytes; o += kSeqChunk)
                tx.stBytes(base + o, buf, kSeqChunk);
        }
    });

/** logheavy: args (regionOff, words). One RMW per distinct word. */
const txn::FuncId kTxpLog = txn::registerTxFunc(
    "txp_log", [](txn::Tx& tx, txn::ArgReader& a) {
        auto off = a.get<uint64_t>();
        auto words = a.get<uint64_t>();
        auto* base = static_cast<uint8_t*>(tx.pool().at(off));
        for (uint64_t w = 0; w < words; w++) {
            uint64_t v;
            tx.ldBytes(&v, base + w * 8, 8);
            v ^= w;
            tx.stBytes(base + w * 8, &v, 8);
        }
    });

std::vector<uint64_t>
setupRegions(bench::Env& env, unsigned threads)
{
    auto eng = env.engine();
    txn::run(eng, kTxpSetup, static_cast<uint64_t>(threads),
             static_cast<uint64_t>(kRegionBytes));
    std::vector<uint64_t> offs(threads);
    const auto* dir =
        static_cast<const uint64_t*>(env.pool->at(env.pool->root()));
    for (unsigned t = 0; t < threads; t++)
        offs[t] = dir[t];
    return offs;
}

/**
 * Run `txBody(eng, regionOff)` repeatedly on `threads` OS threads
 * (each with its own runtime slot and region) until every thread has
 * issued `txPerThread` transactions. Returns wall seconds.
 */
template <typename Fn>
double
timedTxLoop(bench::Env& env, const std::vector<uint64_t>& offs,
            unsigned threads, size_t txPerThread, Fn&& txBody)
{
    auto t0 = Clock::now();
    auto worker = [&](unsigned t) {
        txn::setThreadTid(t);
        auto eng = env.engine();
        for (size_t i = 0; i < txPerThread; i++)
            txBody(eng, offs[t]);
    };
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> ts;
        ts.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            ts.emplace_back(worker, t);
        for (auto& th : ts)
            th.join();
        txn::setThreadTid(0);
    }
    return secondsSince(t0);
}

uint64_t
logEntries(const stats::Snapshot& d)
{
    // clobber entries are a subset of undoEntries; don't double count.
    return d[stats::Counter::undoEntries] +
           d[stats::Counter::redoEntries] +
           d[stats::Counter::idoEntries] +
           d[stats::Counter::lockLogEntries];
}

Row
runMicroSeries(txn::RuntimeKind kind, const std::string& op,
               unsigned threads, size_t opsPerThread)
{
    bench::Env env(kind);
    auto offs = setupRegions(env, threads);

    size_t opsPerTx;
    std::function<void(txn::Engine&, uint64_t)> body;
    if (op == "rmw8") {
        // Pass 1 over the working set populates the per-block sets;
        // the remaining passes are the pure probe hot path. iDO is
        // capped lower: it emits a 160-byte boundary record per RMW,
        // and 8 passes would overflow the slot log area.
        size_t passes = kind == txn::RuntimeKind::ido ? 2 : 8;
        opsPerTx = std::min<size_t>(kRmwWords * passes, opsPerThread);
        body = [opsPerTx](txn::Engine& eng, uint64_t off) {
            txn::run(eng, kTxpRmw, off,
                     static_cast<uint64_t>(kRmwWords),
                     static_cast<uint64_t>(opsPerTx));
        };
    } else if (op == "seqcpy") {
        size_t passes = (kind == txn::RuntimeKind::atlas ||
                         kind == txn::RuntimeKind::redo)
                            ? kSeqPassesEveryStoreLogged
                            : kSeqPasses;
        opsPerTx = (kSeqBytes / kSeqChunk) * passes;
        body = [passes](txn::Engine& eng, uint64_t off) {
            txn::run(eng, kTxpSeq, off,
                     static_cast<uint64_t>(kSeqBytes),
                     static_cast<uint64_t>(passes));
        };
    } else {  // logheavy
        opsPerTx = kLogWords;
        body = [](txn::Engine& eng, uint64_t off) {
            txn::run(eng, kTxpLog, off,
                     static_cast<uint64_t>(kLogWords));
        };
    }

    size_t txPerThread =
        std::max<size_t>(1, opsPerThread / opsPerTx);
    stats::resetAll();
    auto before = stats::aggregate();
    double secs =
        timedTxLoop(env, offs, threads, txPerThread, body);
    auto delta = stats::aggregate() - before;

    Row r;
    r.op = op;
    r.system = env.runtime->name();
    r.threads = threads;
    r.opsPerSec = static_cast<double>(txPerThread) * opsPerTx *
                  threads / (secs > 0 ? secs : 1e-9);
    if (threads == 1) {
        double txs = static_cast<double>(txPerThread);
        r.fencesPerTx = delta[stats::Counter::fences] / txs;
        r.entriesPerTx = static_cast<double>(logEntries(delta)) / txs;
        r.flushesPerTx = delta[stats::Counter::logFlushes] / txs;
        r.logBytesPerTx = delta[stats::Counter::logBytes] / txs;
    }
    return r;
}

Row
runE2eHashmap(txn::RuntimeKind kind, size_t inserts)
{
    bench::Env env(kind);
    auto eng = env.engine();
    auto kv = ds::makeKv("hashmap", eng);
    std::string val(64, 'v');
    char key[24];
    stats::resetAll();
    auto before = stats::aggregate();
    auto t0 = Clock::now();
    for (size_t i = 0; i < inserts; i++) {
        std::snprintf(key, sizeof(key), "user%010zu", i);
        kv->insert(key, val);
    }
    double secs = secondsSince(t0);
    auto delta = stats::aggregate() - before;

    Row r;
    r.op = "e2e_hashmap";
    r.system = env.runtime->name();
    r.threads = 1;
    r.opsPerSec =
        static_cast<double>(inserts) / (secs > 0 ? secs : 1e-9);
    double txs =
        static_cast<double>(delta[stats::Counter::txCommits]);
    if (txs > 0) {
        r.fencesPerTx = delta[stats::Counter::fences] / txs;
        r.entriesPerTx = static_cast<double>(logEntries(delta)) / txs;
        r.flushesPerTx = delta[stats::Counter::logFlushes] / txs;
        r.logBytesPerTx = delta[stats::Counter::logBytes] / txs;
    }
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    size_t ops = bench::totalOps(800000);
    auto maxThreads =
        static_cast<unsigned>(bench::envSize("CNVM_MAXTHREADS", 2));
    std::vector<unsigned> threadCounts{1u};
    if (maxThreads >= 2)
        threadCounts.push_back(2u);

    const std::vector<txn::RuntimeKind> kinds = {
        txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
        txn::RuntimeKind::redo, txn::RuntimeKind::atlas,
        txn::RuntimeKind::ido};

    std::vector<Row> rows;
    for (auto kind : kinds) {
        for (unsigned t : threadCounts) {
            rows.push_back(runMicroSeries(kind, "rmw8", t, ops));
            rows.push_back(runMicroSeries(kind, "seqcpy", t, ops));
            rows.push_back(
                runMicroSeries(kind, "logheavy", t, ops / 4));
        }
        rows.push_back(
            runE2eHashmap(kind, std::min<size_t>(ops / 20, 50000)));
    }

    const char* path =
        argc > 1 ? argv[1] : "BENCH_txpath.current.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"ops_per_thread\": %zu,\n", ops);
    std::fprintf(f, "  \"series\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "    {\"op\": \"%s\", \"system\": \"%s\", \"threads\": "
            "%u, \"ops_per_sec\": %.0f, \"fences_per_tx\": %.2f, "
            "\"log_entries_per_tx\": %.2f, "
            "\"log_flushes_per_tx\": %.2f, "
            "\"log_bytes_per_tx\": %.0f}%s\n",
            r.op.c_str(), r.system.c_str(), r.threads, r.opsPerSec,
            r.fencesPerTx, r.entriesPerTx, r.flushesPerTx,
            r.logBytesPerTx,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);

    for (const auto& r : rows) {
        std::printf("%-12s %-12s threads=%u  %8.2f Mops/s  "
                    "fences/tx=%.1f entries/tx=%.1f flushes/tx=%.1f\n",
                    r.op.c_str(), r.system.c_str(), r.threads,
                    r.opsPerSec / 1e6, r.fencesPerTx, r.entriesPerTx,
                    r.flushesPerTx);
    }
    return 0;
}
