/**
 * @file
 * KV service throughput/latency matrix: the full serving stack
 * (TCP loopback front-end → thread-per-core workers → group commit →
 * persistent store) swept over protocol × worker count × batch cap ×
 * workload mix.
 *
 * This is the paper's memcached+memslap experiment (Section 5.6)
 * rebuilt on the network server: each configuration boots a fresh
 * in-process server on an ephemeral loopback port and drives it with
 * the pipelined load generator (window 32, memslap-style 64-byte
 * values). batch=1 vs batch=8 isolates what group commit buys on a
 * write-heavy mix: with one transaction per mutation every set pays
 * its own begin persist, log seal and commit fence; with batching a
 * window's worth of mutations share them.
 *
 * Output: argv[1] (default BENCH_kvserver.current.json);
 * scripts/bench_kvserver.sh merges it into BENCH_kvserver.json.
 * Latency percentiles are *window* round trips (32 pipelined ops), in
 * microseconds.
 *
 * Each configuration runs CNVM_REPS times (default 3, smoke 1) and
 * reports the best rep: the sweep timeshares server and client
 * threads on whatever cores the box has, so best-of filters scheduler
 * noise out of the checked-in numbers. Reps are interleaved across
 * the matrix so one noisy phase cannot swallow every rep of a cell.
 *
 * Knobs: CNVM_OPS (per config, default 60000), CNVM_POOL_MB,
 * CNVM_REPS, CNVM_SMOKE=1 (tiny run to prove the stack works).
 */
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kv/kv_server.h"
#include "bench_common.h"
#include "server/kv_service.h"
#include "server/loadgen.h"
#include "server/tcp_server.h"

using namespace cnvm;

namespace {

struct Row {
    std::string system;
    std::string mix;
    unsigned workers;
    unsigned batch;
    unsigned conns;
    double opsPerSec;
    double p50us, p95us, p99us;
    double avgBatch;
    uint64_t overflows;
};

struct Mix {
    const char* name;
    double writeRatio;
};

Row
runConfig(txn::RuntimeKind kind, const Mix& mix, unsigned workers,
          unsigned batch, size_t ops)
{
    bench::Env env(kind);
    txn::Engine eng = env.engine();

    apps::KvServer::Config kvCfg;
    kvCfg.shards = 64;
    apps::KvServer kv(eng, 0, kvCfg);

    server::ServiceConfig svcCfg;
    svcCfg.workers = workers;
    svcCfg.batchMax = batch;
    server::KvService svc(kv, svcCfg);
    svc.start();

    server::TcpServer tcp(svc, kv, server::TcpConfig{});
    tcp.start();

    server::LoadConfig load;
    load.port = tcp.port();
    load.connections = std::max(2u, workers);
    load.totalOps = ops;
    load.window = 32;
    load.keySpace = 4000;
    load.valueLen = 64;  // the paper's memslap value size
    load.writeRatio = mix.writeRatio;
    load.seed = 42;
    auto res = server::runLoad(load);

    tcp.stop();
    svc.stop();
    auto st = svc.totalStats();

    Row row;
    row.system = bench::systemName(kind);
    row.mix = mix.name;
    row.workers = workers;
    row.batch = batch;
    row.conns = load.connections;
    row.opsPerSec = res.opsPerSec;
    row.p50us = res.p50us;
    row.p95us = res.p95us;
    row.p99us = res.p99us;
    row.avgBatch = st.batches > 0
                       ? double(st.batchedOps) / double(st.batches)
                       : 1.0;
    row.overflows = st.overflows;
    return row;
}

}  // namespace

int
main(int argc, char** argv)
{
    size_t ops = bench::totalOps(60000);
    std::vector<txn::RuntimeKind> systems = {txn::RuntimeKind::clobber,
                                             txn::RuntimeKind::undo,
                                             txn::RuntimeKind::redo};
    std::vector<Mix> mixes = {{"write100", 1.0},
                              {"write95", 0.95},
                              {"mixed25", 0.25}};
    std::vector<unsigned> workerSweep = {1, 2, 4};
    std::vector<unsigned> batches = {1, 8};
    if (bench::smokeMode()) {
        systems = {txn::RuntimeKind::clobber};
        workerSweep = {2};
    }

    size_t reps = bench::envSize("CNVM_REPS", 3);
    if (bench::smokeMode())
        reps = 1;

    std::vector<Row> rows;
    for (size_t rep = 0; rep < reps; rep++) {
        size_t cell = 0;
        for (auto kind : systems) {
            for (const auto& mix : mixes) {
                for (unsigned w : workerSweep) {
                    for (unsigned b : batches) {
                        Row r = runConfig(kind, mix, w, b, ops);
                        std::printf(
                            "[rep %zu] %-10s %-8s workers=%u "
                            "batch=%u  %9.0f ops/s  p50=%6.1fus "
                            "p95=%6.1fus p99=%6.1fus  "
                            "avg_batch=%.2f\n",
                            rep + 1, r.system.c_str(), r.mix.c_str(),
                            r.workers, r.batch, r.opsPerSec, r.p50us,
                            r.p95us, r.p99us, r.avgBatch);
                        std::fflush(stdout);
                        if (rep == 0)
                            rows.push_back(std::move(r));
                        else if (r.opsPerSec > rows[cell].opsPerSec)
                            rows[cell] = std::move(r);
                        cell++;
                    }
                }
            }
        }
    }

    const char* path =
        argc > 1 ? argv[1] : "BENCH_kvserver.current.json";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return 1;
    }
    std::fprintf(f, "{\n  \"ops_per_config\": %zu,\n",
                 ops);
    std::fprintf(f, "  \"window\": 32,\n  \"reps\": %zu,\n", reps);
    std::fprintf(f, "  \"series\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row& r = rows[i];
        std::fprintf(
            f,
            "   {\"system\": \"%s\", \"mix\": \"%s\", "
            "\"workers\": %u, \"batch\": %u, \"conns\": %u, "
            "\"ops_per_sec\": %.0f, \"p50_us\": %.1f, "
            "\"p95_us\": %.1f, \"p99_us\": %.1f, "
            "\"avg_batch\": %.2f, \"overflows\": %llu}%s\n",
            r.system.c_str(), r.mix.c_str(), r.workers, r.batch,
            r.conns, r.opsPerSec, r.p50us, r.p95us, r.p99us,
            r.avgBatch, static_cast<unsigned long long>(r.overflows),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return 0;
}
