/**
 * @file
 * Figure 12: yada (Ruppert refinement) completion time across angle
 * constraints, No-log vs PMDK vs Clobber-NVM.
 *
 * The paper reports ~42% PMDK overhead vs No-log and ~27% for
 * Clobber-NVM, roughly flat across constraints — refinement is
 * compute-heavy, so logging is a smaller share than in the key-value
 * benchmarks. The mesh here is generated (see src/apps/yada); the
 * printout mirrors the artifact's per-run summary.
 */
#include <benchmark/benchmark.h>

#include "apps/yada/yada.h"
#include <map>

#include "bench_common.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig12.csv");
    static bool once = [] {
        c.comment("fig12: system,angle_deg,elapsed_sim_sec,steps,"
                  "final_mesh_size,overhead_vs_nolog_pct");
        return true;
    }();
    (void)once;
    return c;
}

struct YadaResult {
    double simSeconds;
    uint64_t steps;
    uint64_t meshSize;
    bool valid;
};

YadaResult
measure(txn::RuntimeKind kind, double angleDeg)
{
    bench::Env env(kind, rt::ClobberPolicy::refined, 768ULL << 20);
    auto eng = env.engine();
    apps::Yada::Config cfg;
    cfg.gridSide = bench::envSize("CNVM_YADA_GRID", 26);
    cfg.angleConstraintDeg = angleDeg;
    apps::Yada yada(eng, 0, cfg);

    uint64_t steps = 0;
    double simSeconds = sim::timeSimulated([&](sim::ThreadCtx&) {
        steps = yada.refineAll();
    });
    bool requireQuality = !yada.hasWork();
    return {simSeconds, steps, yada.meshSize(),
            yada.validate(requireQuality)};
}

/** The No-log baseline, computed once per angle. */
YadaResult
baseline(double angle)
{
    static std::map<int, YadaResult> cache;
    int key = static_cast<int>(angle * 100);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    YadaResult v = measure(txn::RuntimeKind::noLog, angle);
    cache[key] = v;
    return v;
}

void
runFig12(benchmark::State& state, txn::RuntimeKind kind)
{
    double angle = static_cast<double>(state.range(0));
    for (auto _ : state) {
        YadaResult base = baseline(angle);
        YadaResult r = kind == txn::RuntimeKind::noLog
                           ? base
                           : measure(kind, angle);
        state.SetIterationTime(r.simSeconds);
        double overhead =
            (r.simSeconds / base.simSeconds - 1.0) * 100.0;
        state.counters["elapsed_s"] = r.simSeconds;
        state.counters["mesh_size"] =
            static_cast<double>(r.meshSize);
        state.counters["overhead_vs_nolog_pct"] = overhead;
        state.counters["valid"] = r.valid ? 1 : 0;
        csv().row("%s,%.0f,%.4f,%llu,%llu,%.1f",
                  bench::systemName(kind), angle, r.simSeconds,
                  static_cast<unsigned long long>(r.steps),
                  static_cast<unsigned long long>(r.meshSize),
                  overhead);
        // Artifact-style summary (Appendix A.6).
        std::printf("Angle constraint = %.6f\n", angle);
        std::printf("Elapsed time = %.3f (simulated)\n", r.simSeconds);
        std::printf("Final mesh size = %llu\n",
                    static_cast<unsigned long long>(r.meshSize));
        std::printf("Final mesh is %s.\n",
                    r.valid ? "valid" : "INVALID");
    }
}

void
registerAll()
{
    for (auto kind :
         {txn::RuntimeKind::noLog, txn::RuntimeKind::clobber,
          txn::RuntimeKind::undo}) {
        std::string name =
            std::string("fig12/") + bench::systemName(kind);
        auto* b = benchmark::RegisterBenchmark(
            name.c_str(), [kind](benchmark::State& st) {
                runFig12(st, kind);
            });
        b->UseManualTime()->Iterations(1)->Unit(
            benchmark::kMillisecond);
        for (int angle : {15, 20, 25, 30})
            b->Arg(angle);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
