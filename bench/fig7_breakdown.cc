/**
 * @file
 * Figure 7 (and the Section 5.3 headline ratios): logging-strategy
 * breakdown on single-threaded YCSB-Load inserts.
 *
 * Configurations, as in the paper:
 *   No-log                — no logging at all (baseline)
 *   Clobber-NVM-vlog      — only the v_log enabled
 *   Clobber-NVM-clobberlog— only the clobber_log enabled
 *   Clobber-NVM-full      — both logs (the real system)
 *   PMDK                  — full undo logging
 *
 * For each configuration it reports simulated throughput plus log
 * entries and log bytes per transaction; the footer prints the
 * paper's headline ratios (PMDK vs Clobber log bytes / fences).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "runtimes/clobber.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;
using stats::Counter;

struct Config {
    const char* name;
    txn::RuntimeKind kind;
    bool vlog;
    bool clobberLog;
};

const Config kConfigs[] = {
    {"nolog", txn::RuntimeKind::noLog, false, false},
    {"clobber-vlog", txn::RuntimeKind::clobber, true, false},
    {"clobber-clobberlog", txn::RuntimeKind::clobber, false, true},
    {"clobber-full", txn::RuntimeKind::clobber, true, true},
    {"pmdk", txn::RuntimeKind::undo, false, false},
};

bench::Csv& csv()
{
    static bench::Csv c("fig7.csv");
    static bool once = [] {
        c.comment("fig7: config,structure,throughput_ops_per_sec,"
                  "log_entries_per_tx,log_bytes_per_tx,fences_per_tx");
        return true;
    }();
    (void)once;
    return c;
}

struct Measured {
    double tput;
    double entriesPerTx;
    double bytesPerTx;
    double fencesPerTx;
};

Measured
measure(const Config& cfg, const std::string& structure, size_t ops)
{
    bench::Env env(cfg.kind);
    if (cfg.kind == txn::RuntimeKind::clobber) {
        auto* cl = dynamic_cast<rt::ClobberRuntime*>(env.runtime.get());
        cl->setVlogEnabled(cfg.vlog);
        cl->setClobberLogEnabled(cfg.clobberLog);
    }
    auto eng = env.engine();
    auto kv = ds::makeKv(structure, eng);
    size_t keyLen = structure == "bptree" ? 32 : 8;
    wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, 256);

    stats::resetAll();
    auto before = stats::aggregate();
    sim::Executor exec(1);
    double simSeconds =
        exec.run(ops, [&](sim::ThreadCtx&, size_t i) {
            kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));
        });
    auto d = stats::aggregate() - before;

    double n = static_cast<double>(ops);
    double entries = 0;
    double bytes = 0;
    if (cfg.kind == txn::RuntimeKind::undo) {
        entries = static_cast<double>(d[Counter::undoEntries]);
        bytes = static_cast<double>(d[Counter::undoBytes]);
    } else {
        entries = static_cast<double>(d[Counter::clobberEntries] +
                                      d[Counter::vlogEntries]);
        bytes = static_cast<double>(d[Counter::clobberBytes] +
                                    d[Counter::vlogBytes]);
    }
    return Measured{n / simSeconds, entries / n, bytes / n,
                    static_cast<double>(d[Counter::fences]) / n};
}

void
runFig7(benchmark::State& state, const Config& cfg,
        const std::string& structure)
{
    size_t ops = bench::totalOps(30000);
    for (auto _ : state) {
        Measured m = measure(cfg, structure, ops);
        state.SetIterationTime(static_cast<double>(ops) / m.tput);
        state.counters["ops_per_sec"] = m.tput;
        state.counters["entries_per_tx"] = m.entriesPerTx;
        state.counters["bytes_per_tx"] = m.bytesPerTx;
        state.counters["fences_per_tx"] = m.fencesPerTx;
        csv().row("%s,%s,%.0f,%.3f,%.1f,%.3f", cfg.name,
                  structure.c_str(), m.tput, m.entriesPerTx,
                  m.bytesPerTx, m.fencesPerTx);
    }
}

/** Section 5.3 headline ratios, printed after the sweep. */
void
printHeadline()
{
    size_t ops = bench::totalOps(30000) / 2;
    std::printf("\n=== Section 5.3 headline ratios "
                "(PMDK undo vs Clobber-NVM) ===\n");
    for (const auto& structure : ds::benchmarkStructures()) {
        Measured pmdk = measure(kConfigs[4], structure, ops);
        Measured clob = measure(kConfigs[3], structure, ops);
        std::printf("%-10s bytes %.1fx  entries %.1fx  fences %.1fx\n",
                    structure.c_str(),
                    pmdk.bytesPerTx / clob.bytesPerTx,
                    pmdk.entriesPerTx / clob.entriesPerTx,
                    pmdk.fencesPerTx / clob.fencesPerTx);
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        for (const auto& cfg : kConfigs) {
            std::string name = std::string("fig7/") + cfg.name + "/" +
                               structure;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [structure, &cfg](benchmark::State& st) {
                    runFig7(st, cfg, structure);
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printHeadline();
    benchmark::Shutdown();
    return 0;
}
