/**
 * @file
 * Extra (beyond the paper's figures): YCSB-A/B/C mixed workloads on
 * the four data structures.
 *
 * The paper's Figure 6 runs YCSB-Load (inserts only); this companion
 * sweep adds the standard read/update mixes, which separate the
 * systems along a second axis: redo logging's read interposition
 * hurts as the read share grows, while the undo-family systems
 * (PMDK, Clobber-NVM) read at native speed, and Clobber-NVM's lazy
 * begin makes read-only transactions free of fences entirely.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("extra_ycsb_mixes.csv");
    static bool once = [] {
        c.comment("extra: system,structure,workload,threads,"
                  "throughput_ops_per_sec");
        return true;
    }();
    (void)once;
    return c;
}

void
runMix(benchmark::State& state, const std::string& structure,
       txn::RuntimeKind kind, wl::YcsbKind workload)
{
    auto threads = static_cast<unsigned>(state.range(0));
    size_t ops = bench::totalOps(30000);
    size_t keyLen = structure == "bptree" ? 32 : 8;

    for (auto _ : state) {
        bench::Env env(kind);
        auto eng = env.engine();
        auto kv = ds::makeKv(structure, eng);

        // Load phase (not measured).
        size_t records = ops / 2;
        wl::Ycsb load(wl::YcsbKind::load, records, keyLen, 256);
        for (size_t i = 0; i < records; i++)
            kv->insert(load.keyOf(i), load.valueOf(i));

        std::vector<wl::Ycsb> streams;
        streams.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            streams.emplace_back(workload, records, keyLen, 256,
                                 100 + t);

        sim::Executor exec(threads);
        size_t perThread = ops / threads;
        ds::LookupResult sink;
        double simSeconds = exec.run(
            perThread, [&](sim::ThreadCtx& ctx, size_t) {
                auto req = streams[ctx.tid()].next();
                if (req.op == wl::YcsbOp::read)
                    kv->lookup(req.key, &sink);
                else
                    kv->insert(req.key, req.value);
            });
        state.SetIterationTime(simSeconds);
        double tput =
            static_cast<double>(perThread * threads) / simSeconds;
        state.counters["ops_per_sec"] = tput;
        csv().row("%s,%s,%s,%u,%.0f", bench::systemName(kind),
                  structure.c_str(), wl::ycsbKindName(workload),
                  threads, tput);
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        for (auto kind :
             {txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
              txn::RuntimeKind::redo}) {
            for (auto workload : {wl::YcsbKind::a, wl::YcsbKind::b,
                                  wl::YcsbKind::c}) {
                std::string name =
                    std::string("extra_ycsb/") +
                    bench::systemName(kind) + "/" + structure +
                    "/ycsb-" + wl::ycsbKindName(workload);
                auto* b = benchmark::RegisterBenchmark(
                    name.c_str(),
                    [structure, kind,
                     workload](benchmark::State& st) {
                        runMix(st, structure, kind, workload);
                    });
                b->UseManualTime()->Iterations(1)->Unit(
                    benchmark::kMillisecond);
                b->Arg(1)->Arg(8);
            }
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
