/**
 * @file
 * Figure 13: effectiveness of the dependency-analysis refinement.
 *
 * Two views, matching Section 5.9:
 *  - static: the compiler pass's clobber-site counts before vs after
 *    removing unexposed/shadowed candidates, per workload module;
 *  - dynamic: throughput and clobber_log volume of the refined vs
 *    conservative runtime policies on the data-structure benchmarks
 *    and the memcached workload mixes.
 *
 * Paper: skiplist improves up to 15% (2 of 5 candidates removed);
 * memcached's 95%-insert mix improves ~15% (32% fewer entries, 47%
 * fewer bytes unoptimized); B+Tree benefits least.
 */
#include <benchmark/benchmark.h>

#include "apps/kv/kv_server.h"
#include "bench_common.h"
#include "cir/builders.h"
#include "cir/clobber_pass.h"
#include "structures/kv.h"
#include "workloads/memslap.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;
using stats::Counter;

bench::Csv& csv()
{
    static bench::Csv c("fig13.csv");
    static bool once = [] {
        c.comment("fig13: workload,conservative_tput,refined_tput,"
                  "improvement_pct,extra_entries_pct,extra_bytes_pct");
        return true;
    }();
    (void)once;
    return c;
}

struct Run {
    double tput;
    double entries;
    double bytes;
};

Run
runStructure(const std::string& structure, rt::ClobberPolicy policy,
             size_t ops)
{
    bench::Env env(txn::RuntimeKind::clobber, policy);
    auto eng = env.engine();
    auto kv = ds::makeKv(structure, eng);
    size_t keyLen = structure == "bptree" ? 32 : 8;
    wl::Ycsb ycsb(wl::YcsbKind::load, ops, keyLen, 256);

    stats::resetAll();
    sim::Executor exec(1);
    double simSeconds =
        exec.run(ops, [&](sim::ThreadCtx&, size_t i) {
            kv->insert(ycsb.keyOf(i), ycsb.valueOf(i));
        });
    auto d = stats::aggregate();
    return {static_cast<double>(ops) / simSeconds,
            static_cast<double>(d[Counter::clobberEntries]),
            static_cast<double>(d[Counter::clobberBytes])};
}

Run
runMemcached(double insertFraction, rt::ClobberPolicy policy,
             size_t ops)
{
    bench::Env env(txn::RuntimeKind::clobber, policy);
    auto eng = env.engine();
    apps::KvServer server(eng);
    wl::Memslap gen(insertFraction, ops, 3);

    stats::resetAll();
    sim::Executor exec(1);
    ds::LookupResult sink;
    double simSeconds =
        exec.run(ops, [&](sim::ThreadCtx&, size_t) {
            auto req = gen.next();
            if (req.op == wl::KvOp::set)
                server.set(req.key, req.value);
            else
                server.get(req.key, &sink);
        });
    auto d = stats::aggregate();
    return {static_cast<double>(ops) / simSeconds,
            static_cast<double>(d[Counter::clobberEntries]),
            static_cast<double>(d[Counter::clobberBytes])};
}

void
report(benchmark::State& state, const std::string& name,
       const Run& cons, const Run& refined, size_t ops)
{
    state.SetIterationTime(static_cast<double>(ops) / refined.tput);
    double improvement = (refined.tput / cons.tput - 1.0) * 100.0;
    double extraEntries =
        refined.entries > 0
            ? (cons.entries / refined.entries - 1.0) * 100.0
            : 0.0;
    double extraBytes =
        refined.bytes > 0
            ? (cons.bytes / refined.bytes - 1.0) * 100.0
            : 0.0;
    state.counters["improvement_pct"] = improvement;
    state.counters["unopt_extra_entries_pct"] = extraEntries;
    state.counters["unopt_extra_bytes_pct"] = extraBytes;
    csv().row("%s,%.0f,%.0f,%.2f,%.1f,%.1f", name.c_str(), cons.tput,
              refined.tput, improvement, extraEntries, extraBytes);
}

void
runFig13Structure(benchmark::State& state,
                  const std::string& structure)
{
    size_t ops = bench::totalOps(25000);
    for (auto _ : state) {
        Run cons = runStructure(structure,
                                rt::ClobberPolicy::conservative, ops);
        Run refined =
            runStructure(structure, rt::ClobberPolicy::refined, ops);
        report(state, structure, cons, refined, ops);
    }
}

void
runFig13Memcached(benchmark::State& state, const wl::MemslapMix& mix)
{
    size_t ops = bench::totalOps(25000);
    for (auto _ : state) {
        Run cons = runMemcached(mix.insertFraction,
                                rt::ClobberPolicy::conservative, ops);
        Run refined = runMemcached(mix.insertFraction,
                                   rt::ClobberPolicy::refined, ops);
        report(state, std::string("memcached-") + mix.name, cons,
               refined, ops);
    }
}

/** Static view: the pass's own removal counts per module. */
void
printStaticCounts()
{
    std::printf("\n=== Compiler-pass refinement per module "
                "(static view) ===\n");
    for (const auto& mod : cir::benchmarkModules()) {
        size_t cons = 0;
        size_t refined = 0;
        int unexposed = 0;
        int shadowed = 0;
        // One instance of each distinct function suffices.
        size_t uniqueFns =
            mod.functions.size() > 0 ? 1 : 0;
        (void)uniqueFns;
        const auto& fn = mod.functions.front();
        auto res = cir::analyzeClobbers(fn);
        cons += res.conservativeSites.size();
        refined += res.refinedSites.size();
        unexposed += res.removedUnexposed;
        shadowed += res.removedShadowed;
        std::printf("  %-10s %zu conservative sites -> %zu refined "
                    "(%d unexposed, %d shadowed pairs removed)\n",
                    mod.name.c_str(), cons, refined, unexposed,
                    shadowed);
    }
}

void
registerAll()
{
    for (const auto& structure : ds::benchmarkStructures()) {
        std::string name = std::string("fig13/") + structure;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [structure](benchmark::State& st) {
                runFig13Structure(st, structure);
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const auto& mix : wl::memslapMixes()) {
        std::string name = std::string("fig13/memcached-") + mix.name;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [mix](benchmark::State& st) { runFig13Memcached(st, mix); })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printStaticCounts();
    benchmark::Shutdown();
    return 0;
}
