/**
 * @file
 * Shared infrastructure for the figure-reproduction benchmarks.
 *
 * Every bench binary regenerates one figure of the paper's evaluation
 * (Section 5): it runs the workload through the logical-thread
 * executor, reports *simulated* time to google-benchmark via manual
 * timing, and appends artifact-style rows to figN.csv (the original
 * artifact's `run_all.sh` emits the same `system,structure,threads,
 * run,valsize,throughput` rows).
 *
 * Scale knobs (environment):
 *   CNVM_OPS        total operations per configuration (default varies)
 *   CNVM_MAXTHREADS cap for the thread sweep (default 24)
 *   CNVM_POOL_MB    pool size in MiB (default 512)
 *   CNVM_SMOKE      =1: CI smoke mode — tiny op counts, two threads,
 *                   64 MiB pool. Explicit knobs above still win.
 */
#ifndef CNVM_BENCH_COMMON_H
#define CNVM_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "alloc/pm_allocator.h"
#include "nvm/pool.h"
#include "runtimes/factory.h"
#include "sim/executor.h"
#include "stats/counters.h"
#include "txn/engine.h"

namespace cnvm::bench {

inline size_t
envSize(const char* name, size_t dflt)
{
    const char* v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : dflt;
}

/** CI smoke mode: just prove the bench binaries run end to end. */
inline bool
smokeMode()
{
    const char* v = std::getenv("CNVM_SMOKE");
    return v != nullptr && v[0] == '1';
}

/**
 * Pool + heap + runtime bundle for one benchmark configuration.
 * The default 512 MiB pool can be shrunk via CNVM_POOL_MB so benches
 * run on small CI machines; an explicit poolBytes wins over both.
 */
class Env {
 public:
    explicit Env(txn::RuntimeKind kind,
                 rt::ClobberPolicy policy = rt::ClobberPolicy::refined,
                 size_t poolBytes = 0)
    {
        nvm::PoolConfig cfg;
        cfg.size = poolBytes != 0
                       ? poolBytes
                       : envSize("CNVM_POOL_MB", smokeMode() ? 64 : 512)
                             << 20;
        cfg.maxThreads = 32;
        cfg.slotBytes = 256ULL << 10;
        pool = nvm::Pool::create(cfg);
        nvm::Pool::setCurrent(pool.get());
        heap = std::make_unique<alloc::PmAllocator>(*pool);
        runtime = rt::makeRuntime(kind, *pool, *heap, policy);
    }

    ~Env()
    {
        if (nvm::Pool::current() == pool.get())
            nvm::Pool::setCurrent(nullptr);
    }

    txn::Engine engine() { return txn::Engine(*runtime); }

    std::unique_ptr<nvm::Pool> pool;
    std::unique_ptr<alloc::PmAllocator> heap;
    std::unique_ptr<txn::Runtime> runtime;
};

/** Total operations per configuration. */
inline size_t
totalOps(size_t dflt)
{
    if (smokeMode())
        dflt = std::min<size_t>(dflt, 2000);
    return envSize("CNVM_OPS", dflt);
}

/** Thread counts for scaling sweeps (paper: 1 to 24). */
inline std::vector<unsigned>
threadSweep()
{
    auto cap = static_cast<unsigned>(
        envSize("CNVM_MAXTHREADS", smokeMode() ? 2 : 24));
    std::vector<unsigned> out;
    for (unsigned t : {1u, 2u, 4u, 8u, 16u, 24u}) {
        if (t <= cap)
            out.push_back(t);
    }
    return out;
}

/** Appends artifact-style rows to a figN.csv next to the binary. */
class Csv {
 public:
    explicit Csv(const std::string& path)
    {
        f_ = std::fopen(path.c_str(), "w");
    }

    ~Csv()
    {
        if (f_ != nullptr)
            std::fclose(f_);
    }

    void
    comment(const std::string& text)
    {
        if (f_ != nullptr)
            std::fprintf(f_, "# %s\n", text.c_str());
    }

    template <typename... Args>
    void
    row(const char* fmt, Args... args)
    {
        if (f_ != nullptr) {
            std::fprintf(f_, fmt, args...);
            std::fprintf(f_, "\n");
            std::fflush(f_);
        }
    }

 private:
    std::FILE* f_ = nullptr;
};

/** The systems compared in the throughput figures, in plot order. */
inline std::vector<txn::RuntimeKind>
figureSystems()
{
    return {txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
            txn::RuntimeKind::redo, txn::RuntimeKind::atlas};
}

inline const char*
systemName(txn::RuntimeKind kind)
{
    switch (kind) {
      case txn::RuntimeKind::noLog: return "nolog";
      case txn::RuntimeKind::undo: return "pmdk";
      case txn::RuntimeKind::redo: return "mnemosyne";
      case txn::RuntimeKind::clobber: return "clobber";
      case txn::RuntimeKind::atlas: return "atlas";
      case txn::RuntimeKind::ido: return "ido";
    }
    return "?";
}

}  // namespace cnvm::bench

#endif  // CNVM_BENCH_COMMON_H
