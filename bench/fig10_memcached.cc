/**
 * @file
 * Figure 10: memcached-model throughput under the four memslap
 * workload mixes (95/75/25/5 % insertion), scaled across threads,
 * for Clobber-NVM, PMDK and Mnemosyne — with both spinlock and
 * reader-writer shard locks (the paper replaced memcached's coarse
 * lock with exactly these).
 *
 * Expected shape: Clobber-NVM wins everywhere; its margin grows with
 * the insert fraction; Mnemosyne trails PMDK on search-heavy mixes
 * (redo's long read path); spinlocks favor insert-heavy mixes,
 * reader-writer locks favor search-heavy ones.
 */
#include <benchmark/benchmark.h>

#include "apps/kv/kv_server.h"
#include "bench_common.h"
#include "structures/kv.h"
#include "workloads/memslap.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("fig10.csv");
    static bool once = [] {
        c.comment("fig10: system,workload,lockmode,threads,"
                  "throughput_ops_per_sec");
        return true;
    }();
    (void)once;
    return c;
}

void
runFig10(benchmark::State& state, txn::RuntimeKind kind,
         const wl::MemslapMix& mix, apps::KvServer::LockMode lockMode)
{
    auto threads = static_cast<unsigned>(state.range(0));
    size_t ops = bench::totalOps(30000);
    const char* lockName =
        lockMode == apps::KvServer::LockMode::spin ? "spinlock"
                                                   : "rwlock";

    for (auto _ : state) {
        bench::Env env(kind, rt::ClobberPolicy::refined, 768ULL << 20);
        auto eng = env.engine();
        apps::KvServer::Config cfg;
        cfg.lockMode = lockMode;
        apps::KvServer server(eng, 0, cfg);

        // Per-thread request streams (memslap clients).
        std::vector<wl::Memslap> streams;
        streams.reserve(threads);
        for (unsigned t = 0; t < threads; t++)
            streams.emplace_back(mix.insertFraction, ops, 1000 + t);

        // Warm the store so searches hit.
        {
            wl::Memslap warm(1.0, ops, 7);
            for (size_t i = 0; i < ops / 2; i++) {
                auto req = warm.next();
                server.set(req.key, req.value);
            }
        }

        sim::Executor exec(threads);
        size_t perThread = ops / threads;
        ds::LookupResult sink;
        double simSeconds = exec.run(
            perThread, [&](sim::ThreadCtx& ctx, size_t) {
                auto req = streams[ctx.tid()].next();
                if (req.op == wl::KvOp::set)
                    server.set(req.key, req.value);
                else
                    server.get(req.key, &sink);
            });
        state.SetIterationTime(simSeconds);
        double tput =
            static_cast<double>(perThread * threads) / simSeconds;
        state.counters["ops_per_sec"] = tput;
        csv().row("%s,%s,%s,%u,%.0f", bench::systemName(kind),
                  mix.name, lockName, threads, tput);
    }
}

void
registerAll()
{
    for (const auto& mix : wl::memslapMixes()) {
        for (auto kind :
             {txn::RuntimeKind::clobber, txn::RuntimeKind::undo,
              txn::RuntimeKind::redo}) {
            for (auto lockMode : {apps::KvServer::LockMode::spin,
                                  apps::KvServer::LockMode::rw}) {
                std::string name =
                    std::string("fig10/") + bench::systemName(kind) +
                    "/" + mix.name + "/" +
                    (lockMode == apps::KvServer::LockMode::spin
                         ? "spinlock"
                         : "rwlock");
                auto* b = benchmark::RegisterBenchmark(
                    name.c_str(),
                    [kind, mix, lockMode](benchmark::State& st) {
                        runFig10(st, kind, mix, lockMode);
                    });
                b->UseManualTime()->Iterations(1)->Unit(
                    benchmark::kMillisecond);
                for (unsigned t : bench::threadSweep())
                    b->Arg(t);
            }
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
