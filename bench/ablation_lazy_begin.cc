/**
 * @file
 * Ablation: lazy vs eager persistence of the transaction begin record
 * (a design choice DESIGN.md calls out).
 *
 * Clobber-NVM's v_log entry — and PMDK's begin record — only has to
 * be durable before the transaction's first store can tear anything,
 * so this library stages it volatilely and persists on first use.
 * The ablation measures what eager persistence (two extra fences on
 * every read-only transaction) costs across YCSB read/write mixes.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "runtimes/base.h"
#include "structures/kv.h"
#include "workloads/ycsb.h"

namespace {

using namespace cnvm;

bench::Csv& csv()
{
    static bench::Csv c("ablation_lazy_begin.csv");
    static bool once = [] {
        c.comment("ablation: system,workload,mode,"
                  "throughput_ops_per_sec,fences_per_op");
        return true;
    }();
    (void)once;
    return c;
}

void
runAblation(benchmark::State& state, txn::RuntimeKind kind,
            wl::YcsbKind workload, bool eager)
{
    size_t ops = bench::totalOps(25000);
    for (auto _ : state) {
        bench::Env env(kind);
        auto* base = dynamic_cast<rt::RuntimeBase*>(env.runtime.get());
        base->setEagerBeginPersist(eager);
        auto eng = env.engine();
        auto kv = ds::makeKv("hashmap", eng);
        // Preload the key space so reads hit.
        wl::Ycsb load(wl::YcsbKind::load, ops / 2, 8, 64);
        for (size_t i = 0; i < ops / 2; i++)
            kv->insert(load.keyOf(i), load.valueOf(i));
        wl::Ycsb gen(workload, ops / 2, 8, 64);

        stats::resetAll();
        sim::Executor exec(1);
        ds::LookupResult sink;
        double simSeconds =
            exec.run(ops, [&](sim::ThreadCtx&, size_t) {
                auto req = gen.next();
                if (req.op == wl::YcsbOp::read)
                    kv->lookup(req.key, &sink);
                else
                    kv->insert(req.key, req.value);
            });
        auto d = stats::aggregate();
        double tput = static_cast<double>(ops) / simSeconds;
        double fences =
            static_cast<double>(d[stats::Counter::fences]) /
            static_cast<double>(ops);
        state.SetIterationTime(simSeconds);
        state.counters["ops_per_sec"] = tput;
        state.counters["fences_per_op"] = fences;
        csv().row("%s,%s,%s,%.0f,%.3f", bench::systemName(kind),
                  wl::ycsbKindName(workload), eager ? "eager" : "lazy",
                  tput, fences);
    }
}

void
registerAll()
{
    for (auto kind :
         {txn::RuntimeKind::clobber, txn::RuntimeKind::undo}) {
        for (auto workload :
             {wl::YcsbKind::a, wl::YcsbKind::b, wl::YcsbKind::c}) {
            for (bool eager : {false, true}) {
                std::string name =
                    std::string("ablation_begin/") +
                    bench::systemName(kind) + "/ycsb-" +
                    wl::ycsbKindName(workload) + "/" +
                    (eager ? "eager" : "lazy");
                benchmark::RegisterBenchmark(
                    name.c_str(),
                    [kind, workload, eager](benchmark::State& st) {
                        runAblation(st, kind, workload, eager);
                    })
                    ->UseManualTime()
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
